// Package softspoken implements SoftSpokenOT (Roy, CRYPTO'22; eprint
// 2022/192) as a second correlated-OT extension backend next to
// internal/ferret: a small-field subfield-VOLE construction that
// chunks the 128-bit global correlation Δ into 128/k field elements of
// k bits each and derives the VOLE columns from punctured GGM PRGs.
//
// Construction (one instance, parameters n and k with k | 128):
//
//   - Setup. Split Δ into nc = 128/k chunks Δ_j of k bits. The
//     extension RECEIVER expands nc binary GGM trees of 2^k leaves and
//     plays base-OT sender for nc·k = 128 random-pair base OTs; the
//     extension SENDER plays base-OT receiver with choice digits
//     derived from Δ_j, unmasks one level sum per tree level, and
//     reconstructs every leaf seed except the one at index Δ_j. Each
//     surviving leaf seeds a persistent AES-CTR stream, so all later
//     Extends are non-interactive PRG evaluation plus one message.
//
//   - Extend. Both sides stretch every leaf stream by m = n+128 bits.
//     Per chunk the receiver folds the 2^k leaf rows r_a into
//     u_j = ⊕_a r_a and k columns v^(b) = ⊕_{bit_b(a)=1} r_a, and
//     sends the correction c_j = u_j ⊕ x against its (random) packed
//     choice vector x. The sender folds its punctured leaves into
//     w^(b) = ⊕_{a≠Δ_j, bit_b(a⊕Δ_j)=1} r_a and adds c_j into every
//     column with bit_b(Δ_j) = 1, which yields w'^(b) = v^(b) ⊕
//     bit_b(Δ_j)·x (the a = Δ_j term vanishes since bit_b(0) = 0).
//     Bit-transposing the 128 columns gives z_t = y_t ⊕ x_t·Δ — the
//     same Δ-correlated COTs ferret produces. The last 128 rows are
//     sacrificed for a lockstep check: the receiver appends x and y
//     for those rows and the sender verifies the correlation on them,
//     so desynchronized endpoints — drifted stream offsets, mismatched
//     iteration counts, truncated or reordered frames — fail loudly
//     with ErrConsistency instead of yielding garbage correlations.
//     This is a sanity check against protocol-state divergence, not a
//     MAC: the semi-honest model assumes a reliable transport, and the
//     malicious-security consistency check of the paper is out of
//     scope, as for ferret (see DESIGN.md).
//
// Wire profile: one receiver→sender message of (128/k)·(n+128)/8 +
// 16 + 2048 bytes per Extend — k-fold fewer column bytes than
// IKNP-style full-width transfer — against ferret's many small
// puncturing flights. WireBytes is that count exactly; the extension
// bench asserts the measured transcript against it byte-for-byte.
package softspoken

import (
	"crypto/rand"
	"crypto/subtle"
	"fmt"

	"ironman/internal/aesprg"
	"ironman/internal/baseot"
	"ironman/internal/block"
	"ironman/internal/ggm"
	"ironman/internal/obs"
	"ironman/internal/parallel"
	"ironman/internal/prg"
	"ironman/internal/transport"
)

// Trace thread-id layout, mirroring ferret: each endpoint owns a lane
// for its sequential phases and worker lanes directly after it.
const (
	// SenderTID is the trace lane of the sender's sequential phases.
	SenderTID = 1
	// ReceiverTID is the trace lane of the receiver's phases.
	ReceiverTID = 101
)

// kappa is the computational security parameter: the width of Δ, the
// base-OT count, and the number of sacrificed check rows per Extend.
const kappa = 128

// DefaultFieldBits is the default subfield size k: 4-bit chunks, the
// wire/compute balance point (2^4 leaf streams per chunk for a 4-fold
// column reduction over IKNP).
const DefaultFieldBits = 4

// Domain-separation constants for the deterministic Options.Seed
// streams (same idiom as ferret: each role derives private randomness
// from an independent stream).
var (
	seedDomainReceiver = block.New(0x736f6674727376, 2) // "softrsv"
	seedDomainDealer   = block.New(0x736f667464656c, 3) // "softdel"
)

// ErrConsistency is returned by Sender.Extend when the sacrificed
// check rows fail to verify: the two endpoints' streams have diverged
// (corrupted transcript, mismatched iteration counts, or a buggy
// transport), and none of the batch's correlations are trustworthy.
var ErrConsistency = fmt.Errorf("softspoken: check rows broke the correlation (transcript corrupted or endpoints desynchronized)")

// Options configures a protocol instance.
type Options struct {
	// FieldBits is the subfield size k: Δ is processed in 128/k chunks
	// of k bits, each backed by a GGM tree of 2^k leaf streams. Larger
	// k trades PRG compute (2^k/k times the stream bytes) for a k-fold
	// column-transfer reduction. Must divide 128 and keep the trees
	// sane: 1, 2, 4 or 8. 0 selects DefaultFieldBits.
	FieldBits int
	// Workers caps the goroutines Extend's local phases use (leaf
	// stream expansion, the bit transpose). 0 selects
	// runtime.GOMAXPROCS; 1 is strictly sequential. The wire
	// transcript is byte-identical for every value.
	Workers int
	// Seed, when non-zero, derives every endpoint-local random draw —
	// the receiver's GGM roots and per-Extend choice vectors, and the
	// dealt setup of DealPair — from deterministic AES-CTR streams
	// instead of crypto/rand. NOT secure; determinism cross-checks and
	// the benchmark harness use it.
	Seed block.Block
	// Trace, when non-nil, records one span per Extend phase
	// ("extend" wrapping the iteration, "softspoken.expand" and
	// "softspoken.transpose" inside it, plus per-worker lanes).
	Trace *obs.Tracer
}

func (o *Options) fill() {
	if o.FieldBits == 0 {
		o.FieldBits = DefaultFieldBits
	}
}

func (o *Options) validate(n int) error {
	switch o.FieldBits {
	case 1, 2, 4, 8:
	default:
		return fmt.Errorf("softspoken: FieldBits must be 1, 2, 4 or 8, got %d", o.FieldBits)
	}
	if n <= 0 || n%8 != 0 {
		return fmt.Errorf("softspoken: batch size must be a positive multiple of 8, got %d", n)
	}
	return nil
}

func (o *Options) traceFor(tid int, name string) *obs.Tracer {
	if o.Trace != nil {
		o.Trace.NameThread(tid, name)
	}
	return o.Trace
}

// treePRG is the GGM expansion PRG: binary AES, matching the
// fixed-key leaf derivation the leaf streams (AES-CTR) assume.
func treePRG() prg.PRG { return prg.New(prg.AES, 2) }

// WireBytes is the exact per-Extend transcript size for batch n and
// subfield k: 128/k correction columns of (n+128)/8 bytes plus the
// 16-byte x and 2048-byte y check-row sections, in one message.
func WireBytes(n, k int) int64 {
	mb := int64(n+kappa) / 8
	return int64(kappa/k)*mb + block.Size + kappa*block.Size
}

// Sender is the extension sender: holder of the global Δ, consumer of
// the punctured leaf streams.
type Sender struct {
	conn    transport.Conn
	n       int
	k       int
	nc      int
	holes   []int            // Δ_j per chunk: the leaf index it cannot expand
	streams []*aesprg.Stream // nc·2^k leaf streams, nil at each chunk's hole
	delta   block.Block
	workers int
	trace   *obs.Tracer
	// Iterations counts completed Extend calls.
	Iterations int
}

// Receiver is the extension receiver: owner of all leaf streams and of
// the per-Extend random choice vectors.
type Receiver struct {
	conn    transport.Conn
	n       int
	k       int
	nc      int
	streams []*aesprg.Stream // nc·2^k leaf streams, all present
	rng     *aesprg.Stream   // GGM roots at setup, then per-Extend x draws
	workers int
	trace   *obs.Tracer
	// Iterations counts completed Extend calls.
	Iterations int
}

// chunkHoles splits delta into 128/k k-bit chunk values, LSB-first
// within each chunk: Δ_j = Σ_b bit(j·k+b) · 2^b.
func chunkHoles(delta block.Block, k int) []int {
	holes := make([]int, kappa/k)
	for j := range holes {
		v := 0
		for b := 0; b < k; b++ {
			v |= delta.Bit(j*k+b) << uint(b)
		}
		holes[j] = v
	}
	return holes
}

// newReceiverCore draws the GGM roots, expands the chunk trees and
// seeds the leaf streams; the caller wires up the setup protocol (or,
// for DealPair, hands the leaves to the dealt sender directly).
func newReceiverCore(n int, opts Options) (*Receiver, []*ggm.Tree, error) {
	opts.fill()
	if err := opts.validate(n); err != nil {
		return nil, nil, err
	}
	var rng *aesprg.Stream
	if opts.Seed != (block.Block{}) {
		rng = aesprg.NewStream(opts.Seed.Xor(seedDomainReceiver))
	} else {
		var seed [block.Size]byte
		if _, err := rand.Read(seed[:]); err != nil {
			return nil, nil, err
		}
		rng = aesprg.NewStream(block.FromBytes(seed[:]))
	}
	k := opts.FieldBits
	nc := kappa / k
	leaves := 1 << uint(k)
	roots := make([]block.Block, nc)
	rng.Blocks(roots)
	p := treePRG()
	arities := ggm.LevelArities(leaves, 2)
	trees := make([]*ggm.Tree, nc)
	streams := make([]*aesprg.Stream, nc*leaves)
	for j, root := range roots {
		trees[j] = ggm.Expand(p, root, arities)
		for a, leaf := range trees[j].Leaves() {
			streams[j*leaves+a] = aesprg.NewStream(leaf)
		}
	}
	r := &Receiver{
		n: n, k: k, nc: nc, streams: streams, rng: rng,
		workers: opts.Workers,
		trace:   opts.traceFor(ReceiverTID, "softspoken.receiver"),
	}
	return r, trees, nil
}

// NewReceiver initializes the receiving endpoint over conn (the peer
// must run NewSender concurrently): it serves the 128 base OTs and
// sends one message of masked GGM level sums.
func NewReceiver(conn transport.Conn, n int, opts Options) (*Receiver, error) {
	r, trees, err := newReceiverCore(n, opts)
	if err != nil {
		return nil, err
	}
	r.conn = conn
	pairs, err := baseot.Send(conn, kappa)
	if err != nil {
		return nil, fmt.Errorf("softspoken init: %w", err)
	}
	// One masked pair of level sums per (chunk, level): the sender
	// unmasks exactly the sum its base-OT choice paid for.
	msg := make([]byte, kappa*2*block.Size)
	for j, tree := range trees {
		for l := 1; l <= r.k; l++ {
			sums := tree.LevelSums(l)
			i := j*r.k + l - 1
			sums[0].Xor(pairs[i][0]).Put(msg[i*2*block.Size:])
			sums[1].Xor(pairs[i][1]).Put(msg[(i*2+1)*block.Size:])
		}
	}
	if err := conn.Send(msg); err != nil {
		return nil, fmt.Errorf("softspoken init: %w", err)
	}
	return r, nil
}

// NewSender initializes the sending endpoint over conn: it runs the
// base OTs with choice digits derived from delta, unmasks one level
// sum per tree level, and reconstructs the punctured leaf streams.
func NewSender(conn transport.Conn, delta block.Block, n int, opts Options) (*Sender, error) {
	opts.fill()
	if err := opts.validate(n); err != nil {
		return nil, err
	}
	k := opts.FieldBits
	nc := kappa / k
	leaves := 1 << uint(k)
	holes := chunkHoles(delta, k)
	arities := ggm.LevelArities(leaves, 2)
	digits := make([][]int, nc)
	choices := make([]bool, kappa)
	for j, hole := range holes {
		digits[j] = ggm.Digits(hole, arities)
		for l, d := range digits[j] {
			// We must learn the level sum OPPOSITE the hole's path
			// digit — the one entry ggm.Reconstruct reads per level.
			choices[j*k+l] = d == 0
		}
	}
	keys, err := baseot.Receive(conn, choices)
	if err != nil {
		return nil, fmt.Errorf("softspoken init: %w", err)
	}
	msg, err := conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("softspoken init: %w", err)
	}
	if len(msg) != kappa*2*block.Size {
		return nil, fmt.Errorf("softspoken init: masked-sum message is %d bytes, want %d", len(msg), kappa*2*block.Size)
	}
	p := treePRG()
	streams := make([]*aesprg.Stream, nc*leaves)
	for j, hole := range holes {
		sums := make([][]block.Block, k)
		for l := 0; l < k; l++ {
			i := j*k + l
			idx := 1 - digits[j][l]
			sums[l] = make([]block.Block, 2)
			sums[l][idx] = block.FromBytes(msg[(i*2+idx)*block.Size:]).Xor(keys[i])
		}
		rec := ggm.Reconstruct(p, arities, hole, sums)
		for a, leaf := range rec.Leaves {
			if a == hole {
				continue
			}
			streams[j*leaves+a] = aesprg.NewStream(leaf)
		}
	}
	return &Sender{
		conn: conn, n: n, k: k, nc: nc, holes: holes, streams: streams,
		delta: delta, workers: opts.Workers,
		trace: opts.traceFor(SenderTID, "softspoken.sender"),
	}, nil
}

// DealPair is the trusted-dealer shortcut: both endpoints of one
// instance in-process, with the sender's punctured streams dealt from
// the receiver's trees instead of run through base OTs. NOT secure
// (the dealer sees everything); tests and benchmarks of post-setup
// behaviour use it, exactly like ferret.DealPools.
func DealPair(connS, connR transport.Conn, delta block.Block, n int, opts Options) (*Sender, *Receiver, error) {
	if opts.Seed != (block.Block{}) {
		// Domain-shift so a DealPair and a network pair from the same
		// caller seed cannot alias each other's streams.
		opts.Seed = opts.Seed.Xor(seedDomainDealer)
	}
	r, trees, err := newReceiverCore(n, opts)
	if err != nil {
		return nil, nil, err
	}
	r.conn = connR
	opts.fill()
	k := opts.FieldBits
	leaves := 1 << uint(k)
	holes := chunkHoles(delta, k)
	streams := make([]*aesprg.Stream, len(r.streams))
	for j, tree := range trees {
		for a, leaf := range tree.Leaves() {
			if a == holes[j] {
				continue
			}
			// Fresh stream objects: the two endpoints advance their
			// copies independently.
			streams[j*leaves+a] = aesprg.NewStream(leaf)
		}
	}
	s := &Sender{
		conn: connS, n: n, k: k, nc: r.nc, holes: holes, streams: streams,
		delta: delta, workers: opts.Workers,
		trace: opts.traceFor(SenderTID, "softspoken.sender"),
	}
	return s, r, nil
}

// Delta returns the sender's global correlation.
func (s *Sender) Delta() block.Block { return s.delta }

// Batch returns the usable correlations per Extend.
func (s *Sender) Batch() int   { return s.n }
func (r *Receiver) Batch() int { return r.n }

// xorInto dst ^= src (equal lengths).
func xorInto(dst, src []byte) { subtle.XORBytes(dst, dst, src) }

// transposeCols turns 128 column bit-vectors of m bits into m 128-bit
// rows (row t bit c = bit t of cols[c]), sharded by row ranges so the
// result is independent of the worker count.
func transposeCols(cols [][]byte, m, workers int, tr *obs.Tracer, tid int) []block.Block {
	rows := make([]block.Block, m)
	sp := tr.Span("softspoken.transpose", "extend", tid)
	parallel.ShardIndexed(workers, m, func(shard, lo, hi int) {
		w := tr.Span("softspoken.transpose", "extend.worker", tid+1+shard)
		for c := 0; c < kappa; c++ {
			col := cols[c]
			for t := lo; t < hi; t++ {
				if col[t>>3]>>(uint(t)&7)&1 == 1 {
					rows[t] = rows[t].SetBit(c, 1)
				}
			}
		}
		if w.Live() {
			w.EndArgs(map[string]any{"rows": hi - lo})
		}
	})
	if sp.Live() {
		sp.EndArgs(map[string]any{"rows": m})
	}
	return rows
}

// Extend runs one iteration on the receiver side and returns n choice
// bits x and blocks y with z = y ⊕ x·Δ held by the sender. Local
// phases shard across Options.Workers goroutines; the single outgoing
// message is byte-identical for every worker count.
func (r *Receiver) Extend() ([]bool, []block.Block, error) {
	ext := r.trace.Span("extend", "softspoken", ReceiverTID)
	m := r.n + kappa
	mb := m / 8
	leaves := 1 << uint(r.k)
	xb := make([]byte, mb)
	r.rng.Fill(xb)
	cols := make([][]byte, kappa)
	msg := make([]byte, r.nc*mb+block.Size+kappa*block.Size)
	exp := r.trace.Span("softspoken.expand", "extend", ReceiverTID)
	parallel.ShardIndexed(r.workers, r.nc, func(shard, lo, hi int) {
		sp := r.trace.Span("softspoken.expand", "extend.worker", ReceiverTID+1+shard)
		buf := make([]byte, mb)
		for j := lo; j < hi; j++ {
			// Correction column c_j = (⊕_a r_a) ⊕ x, written straight
			// into its slot of the single outgoing message.
			corr := msg[j*mb : (j+1)*mb]
			for b := 0; b < r.k; b++ {
				cols[j*r.k+b] = make([]byte, mb)
			}
			for a := 0; a < leaves; a++ {
				r.streams[j*leaves+a].Fill(buf)
				xorInto(corr, buf)
				for b := 0; b < r.k; b++ {
					if a>>uint(b)&1 == 1 {
						xorInto(cols[j*r.k+b], buf)
					}
				}
			}
			xorInto(corr, xb)
		}
		if sp.Live() {
			sp.EndArgs(map[string]any{"chunks": hi - lo})
		}
	})
	if exp.Live() {
		exp.EndArgs(map[string]any{"chunks": r.nc, "rows": m})
	}
	y := transposeCols(cols, m, r.workers, r.trace, ReceiverTID)
	// Check-row sections: the last 128 rows' x bits and y blocks let
	// the sender verify the correlation before trusting the batch.
	off := r.nc * mb
	copy(msg[off:], xb[r.n/8:])
	copy(msg[off+block.Size:], block.ToBytes(y[r.n:]))
	if err := r.conn.Send(msg); err != nil {
		return nil, nil, fmt.Errorf("softspoken extend: %w", err)
	}
	bits := make([]bool, r.n)
	for t := range bits {
		bits[t] = xb[t>>3]>>(uint(t)&7)&1 == 1
	}
	r.Iterations++
	if ext.Live() {
		ext.EndArgs(map[string]any{"iteration": r.Iterations, "n": r.n})
	}
	return bits, y[:r.n], nil
}

// Extend runs one iteration on the sender side and returns n blocks z
// with z = y ⊕ x·Δ. It consumes the peer's correction message and
// fails with ErrConsistency when the sacrificed check rows do not
// verify.
func (s *Sender) Extend() ([]block.Block, error) {
	ext := s.trace.Span("extend", "softspoken", SenderTID)
	m := s.n + kappa
	mb := m / 8
	leaves := 1 << uint(s.k)
	cols := make([][]byte, kappa)
	exp := s.trace.Span("softspoken.expand", "extend", SenderTID)
	parallel.ShardIndexed(s.workers, s.nc, func(shard, lo, hi int) {
		sp := s.trace.Span("softspoken.expand", "extend.worker", SenderTID+1+shard)
		buf := make([]byte, mb)
		for j := lo; j < hi; j++ {
			for b := 0; b < s.k; b++ {
				cols[j*s.k+b] = make([]byte, mb)
			}
			hole := s.holes[j]
			for a := 0; a < leaves; a++ {
				if a == hole {
					continue
				}
				s.streams[j*leaves+a].Fill(buf)
				// Fold by the offset a⊕Δ_j: with the correction added
				// below this lines the columns up as v^(b) ⊕
				// bit_b(Δ_j)·x (the hole term has offset 0, no bits).
				t := a ^ hole
				for b := 0; b < s.k; b++ {
					if t>>uint(b)&1 == 1 {
						xorInto(cols[j*s.k+b], buf)
					}
				}
			}
		}
		if sp.Live() {
			sp.EndArgs(map[string]any{"chunks": hi - lo})
		}
	})
	if exp.Live() {
		exp.EndArgs(map[string]any{"chunks": s.nc, "rows": m})
	}
	msg, err := s.conn.Recv()
	if err != nil {
		return nil, fmt.Errorf("softspoken extend: %w", err)
	}
	want := s.nc*mb + block.Size + kappa*block.Size
	if len(msg) != want {
		return nil, fmt.Errorf("softspoken extend: correction message is %d bytes, want %d", len(msg), want)
	}
	for j := 0; j < s.nc; j++ {
		corr := msg[j*mb : (j+1)*mb]
		for b := 0; b < s.k; b++ {
			if s.holes[j]>>uint(b)&1 == 1 {
				xorInto(cols[j*s.k+b], corr)
			}
		}
	}
	z := transposeCols(cols, m, s.workers, s.trace, SenderTID)
	xchk := msg[s.nc*mb : s.nc*mb+block.Size]
	ychk := block.SliceFromBytes(msg[s.nc*mb+block.Size:])
	for t := 0; t < kappa; t++ {
		wantZ := ychk[t]
		if xchk[t>>3]>>(uint(t)&7)&1 == 1 {
			wantZ = wantZ.Xor(s.delta)
		}
		if z[s.n+t] != wantZ {
			return nil, fmt.Errorf("%w: check row %d", ErrConsistency, t)
		}
	}
	s.Iterations++
	if ext.Live() {
		ext.EndArgs(map[string]any{"iteration": s.Iterations, "n": s.n})
	}
	return z[:s.n], nil
}

// ExtendLockstep runs one iteration of both endpoints of an
// in-process pair concurrently and joins the results, mirroring
// ferret.ExtendLockstep.
func ExtendLockstep(s *Sender, r *Receiver) ([]block.Block, []bool, []block.Block, error) {
	var z []block.Block
	var serr error
	done := make(chan struct{})
	go func() {
		z, serr = s.Extend()
		close(done)
	}()
	bits, y, rerr := r.Extend()
	<-done
	if serr != nil {
		return nil, nil, nil, serr
	}
	if rerr != nil {
		return nil, nil, nil, rerr
	}
	return z, bits, y, nil
}
