package softspoken

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"ironman/internal/block"
	"ironman/internal/transport"
)

const testN = 1024

var testSeed = block.New(0x736f6674, 0x74657374)

func checkCorrelation(t *testing.T, delta block.Block, z []block.Block, bits []bool, y []block.Block) {
	t.Helper()
	if len(z) != len(bits) || len(z) != len(y) {
		t.Fatalf("length mismatch: %d/%d/%d", len(z), len(bits), len(y))
	}
	for i := range z {
		want := y[i]
		if bits[i] {
			want = want.Xor(delta)
		}
		if z[i] != want {
			t.Fatalf("correlation broken at %d", i)
		}
	}
}

func TestDealtCorrelationAllFieldSizes(t *testing.T) {
	delta := block.New(0xdead, 0xbeef)
	for _, k := range []int{1, 2, 4, 8} {
		connS, connR := transport.Pipe()
		s, r, err := DealPair(connS, connR, delta, testN, Options{FieldBits: k, Seed: testSeed})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// Several iterations: the persistent leaf streams must stay in
		// lockstep across Extends.
		for it := 0; it < 3; it++ {
			z, bits, y, err := ExtendLockstep(s, r)
			if err != nil {
				t.Fatalf("k=%d it=%d: %v", k, it, err)
			}
			if len(z) != testN {
				t.Fatalf("k=%d: got %d correlations, want %d", k, len(z), testN)
			}
			checkCorrelation(t, delta, z, bits, y)
		}
	}
}

func TestNetworkSetup(t *testing.T) {
	delta := block.New(0x1234, 0x5678)
	connS, connR := transport.Pipe()
	type res struct {
		s   *Sender
		err error
	}
	ch := make(chan res, 1)
	go func() {
		s, err := NewSender(connS, delta, testN, Options{})
		ch <- res{s, err}
	}()
	r, err := NewReceiver(connR, testN, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sr := <-ch
	if sr.err != nil {
		t.Fatal(sr.err)
	}
	for it := 0; it < 2; it++ {
		z, bits, y, err := ExtendLockstep(sr.s, r)
		if err != nil {
			t.Fatal(err)
		}
		checkCorrelation(t, delta, z, bits, y)
	}
}

func TestRandomDeltaChunks(t *testing.T) {
	// A delta exercising every chunk value path (all-ones: hole =
	// 2^k-1 everywhere) and the zero chunks (hole = 0).
	for _, delta := range []block.Block{block.New(^uint64(0), ^uint64(0)), block.New(1, 0), {}} {
		connS, connR := transport.Pipe()
		s, r, err := DealPair(connS, connR, delta, testN, Options{Seed: testSeed})
		if err != nil {
			t.Fatal(err)
		}
		z, bits, y, err := ExtendLockstep(s, r)
		if err != nil {
			t.Fatal(err)
		}
		checkCorrelation(t, delta, z, bits, y)
	}
}

// recordingConn mirrors the ferret determinism-test idiom: it logs
// every sent frame (length-prefixed) so two runs' transcripts can be
// compared byte for byte.
type recordingConn struct {
	transport.Conn
	log bytes.Buffer
}

func (c *recordingConn) Send(p []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(p)))
	c.log.Write(hdr[:])
	c.log.Write(p)
	return c.Conn.Send(p)
}

func runSeeded(t *testing.T, workers int) (wire []byte, z []block.Block, bits []bool, y []block.Block) {
	t.Helper()
	delta := block.New(0xfeed, 0xface)
	pS, pR := transport.Pipe()
	connS := &recordingConn{Conn: pS}
	connR := &recordingConn{Conn: pR}
	s, r, err := DealPair(connS, connR, delta, testN, Options{Seed: testSeed, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	for it := 0; it < 2; it++ {
		z, bits, y, err = ExtendLockstep(s, r)
		if err != nil {
			t.Fatal(err)
		}
		checkCorrelation(t, delta, z, bits, y)
	}
	all := append(connS.log.Bytes(), connR.log.Bytes()...)
	return all, z, bits, y
}

func TestTranscriptDeterminismAcrossWorkers(t *testing.T) {
	wire1, z1, bits1, y1 := runSeeded(t, 1)
	for _, workers := range []int{2, 4} {
		wireN, zN, bitsN, yN := runSeeded(t, workers)
		if !bytes.Equal(wire1, wireN) {
			t.Fatalf("workers=%d changed the wire transcript (%d vs %d bytes)", workers, len(wireN), len(wire1))
		}
		if !block.Equal(z1, zN) || !block.Equal(y1, yN) {
			t.Fatalf("workers=%d changed the outputs", workers)
		}
		for i := range bits1 {
			if bits1[i] != bitsN[i] {
				t.Fatalf("workers=%d changed choice bit %d", workers, i)
			}
		}
	}
}

func TestWireBytesExact(t *testing.T) {
	delta := block.New(0xabcd, 0xef01)
	for _, k := range []int{1, 2, 4, 8} {
		connS, connR := transport.Pipe()
		s, r, err := DealPair(connS, connR, delta, testN, Options{FieldBits: k, Seed: testSeed})
		if err != nil {
			t.Fatal(err)
		}
		const iters = 3
		for it := 0; it < iters; it++ {
			if _, _, _, err := ExtendLockstep(s, r); err != nil {
				t.Fatal(err)
			}
		}
		got := connS.Stats().TotalBytes()
		if want := iters * WireBytes(testN, k); got != want {
			t.Fatalf("k=%d: measured %d wire bytes over %d iterations, model says %d", k, got, iters, want)
		}
	}
}

// flippingConn corrupts one bit of the first received frame's y-check
// section (its last byte), which must trip the sender's check rows.
type flippingConn struct{ transport.Conn }

func (c flippingConn) Recv() ([]byte, error) {
	p, err := c.Conn.Recv()
	if err == nil && len(p) > 0 {
		p[len(p)-1] ^= 1
	}
	return p, err
}

func TestConsistencyCheckTripsOnCorruption(t *testing.T) {
	delta := block.New(0x5555, 0xaaaa)
	pS, connR := transport.Pipe()
	s, r, err := DealPair(flippingConn{pS}, connR, delta, testN, Options{Seed: testSeed})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Extend(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Extend(); !errors.Is(err, ErrConsistency) {
		t.Fatalf("corrupted correction message: got %v, want ErrConsistency", err)
	}
}

func TestOptionValidation(t *testing.T) {
	connS, connR := transport.Pipe()
	if _, _, err := DealPair(connS, connR, block.Block{}, testN, Options{FieldBits: 3}); err == nil {
		t.Fatal("FieldBits=3 accepted")
	}
	if _, _, err := DealPair(connS, connR, block.Block{}, 1001, Options{}); err == nil {
		t.Fatal("n=1001 accepted")
	}
	if _, _, err := DealPair(connS, connR, block.Block{}, 0, Options{}); err == nil {
		t.Fatal("n=0 accepted")
	}
}
