package spcot

import (
	"math/rand"
	"testing"

	"ironman/internal/aesprg"
	"ironman/internal/block"
	"ironman/internal/cot"
	"ironman/internal/prg"
	"ironman/internal/transport"
)

// run executes one SPCOT and returns (delta, w, v).
func run(t *testing.T, p prg.PRG, leaves, alpha, budget int) (block.Block, []block.Block, []block.Block) {
	t.Helper()
	sp, rp, err := cot.RandomPools(budget)
	if err != nil {
		t.Fatal(err)
	}
	h := aesprg.NewHash()
	a, b := transport.Pipe()
	type sres struct {
		w   []block.Block
		err error
	}
	ch := make(chan sres, 1)
	go func() {
		w, err := Send(a, sp, h, p, leaves)
		ch <- sres{w, err}
	}()
	v, err := Receive(b, rp, h, p, leaves, alpha)
	if err != nil {
		t.Fatal(err)
	}
	s := <-ch
	if s.err != nil {
		t.Fatal(s.err)
	}
	return sp.Delta, s.w, v
}

// checkRelation verifies w = v ⊕ u·Δ with u one-hot at alpha.
func checkRelation(t *testing.T, delta block.Block, w, v []block.Block, alpha int) {
	t.Helper()
	for i := range w {
		want := v[i]
		if i == alpha {
			want = want.Xor(delta)
		}
		if w[i] != want {
			t.Fatalf("relation broken at %d (alpha=%d)", i, alpha)
		}
	}
}

func TestSPCOTAllConfigs(t *testing.T) {
	configs := []struct {
		p      prg.PRG
		leaves int
	}{
		{prg.New(prg.AES, 2), 16},     // classic binary Ferret
		{prg.New(prg.ChaCha8, 4), 16}, // Ironman 4-ary
		{prg.New(prg.ChaCha8, 4), 32}, // mixed radix 4,4,2
		{prg.New(prg.AES, 4), 64},
		{prg.New(prg.ChaCha8, 8), 64},
	}
	for _, cfg := range configs {
		for _, alpha := range []int{0, 1, cfg.leaves / 2, cfg.leaves - 1} {
			delta, w, v := run(t, cfg.p, cfg.leaves, alpha, COTBudget(cfg.leaves))
			checkRelation(t, delta, w, v, alpha)
		}
	}
}

func TestSPCOTRandomAlpha(t *testing.T) {
	p := prg.New(prg.ChaCha8, 4)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		leaves := 1 << uint(2+rng.Intn(7)) // 4..512
		alpha := rng.Intn(leaves)
		delta, w, v := run(t, p, leaves, alpha, COTBudget(leaves))
		checkRelation(t, delta, w, v, alpha)
	}
}

// TestCOTBudgetIndependentOfArity verifies §4.2's claim: puncturing
// consumes log2(leaves) COTs whether the tree is 2-ary or 4-ary.
func TestCOTBudgetIndependentOfArity(t *testing.T) {
	const leaves = 256
	for _, p := range []prg.PRG{prg.New(prg.AES, 2), prg.New(prg.ChaCha8, 4)} {
		sp, rp, err := cot.RandomPools(64)
		if err != nil {
			t.Fatal(err)
		}
		h := aesprg.NewHash()
		a, b := transport.Pipe()
		go func() { _, _ = Send(a, sp, h, p, leaves) }()
		if _, err := Receive(b, rp, h, p, leaves, 3); err != nil {
			t.Fatal(err)
		}
		if sp.Used() != 8 {
			t.Fatalf("%s: consumed %d COTs, want log2(256)=8", p.Name(), sp.Used())
		}
		if rp.Used() != 8 {
			t.Fatalf("%s: receiver consumed %d", p.Name(), rp.Used())
		}
	}
}

// TestMAryCommunicationGrows reproduces the trend of Figure 7(b):
// larger arity lowers op count but raises online communication.
func TestMAryCommunicationGrows(t *testing.T) {
	const leaves = 4096
	bytesFor := func(p prg.PRG) int64 {
		sp, rp, err := cot.RandomPools(64)
		if err != nil {
			t.Fatal(err)
		}
		h := aesprg.NewHash()
		a, b := transport.Pipe()
		done := make(chan struct{})
		go func() {
			_, _ = Send(a, sp, h, p, leaves)
			close(done)
		}()
		if _, err := Receive(b, rp, h, p, leaves, 1); err != nil {
			t.Fatal(err)
		}
		<-done
		return a.Stats().TotalBytes()
	}
	b2 := bytesFor(prg.New(prg.ChaCha8, 2))
	b4 := bytesFor(prg.New(prg.ChaCha8, 4))
	b16 := bytesFor(prg.New(prg.ChaCha8, 16))
	if !(b2 < b4 && b4 < b16) {
		t.Fatalf("communication should grow with arity: m=2:%d m=4:%d m=16:%d", b2, b4, b16)
	}
}

func TestReceiveRejectsBadAlpha(t *testing.T) {
	p := prg.New(prg.AES, 2)
	_, rp, _ := cot.RandomPools(8)
	h := aesprg.NewHash()
	a, _ := transport.Pipe()
	if _, err := Receive(a, rp, h, p, 16, 16); err == nil {
		t.Fatal("expected range error")
	}
	if _, err := Receive(a, rp, h, p, 16, -1); err == nil {
		t.Fatal("expected range error")
	}
}

func TestExhaustedPoolFails(t *testing.T) {
	p := prg.New(prg.AES, 2)
	sp, rp, _ := cot.RandomPools(2) // needs 4
	h := aesprg.NewHash()
	a, b := transport.Pipe()
	go func() {
		_, _ = Receive(b, rp, h, p, 16, 0)
		b.Close()
		a.Close()
	}()
	if _, err := Send(a, sp, h, p, 16); err == nil {
		t.Fatal("expected failure on exhausted pool")
	}
}

func TestCOTBudgetValues(t *testing.T) {
	cases := map[int]int{2: 1, 4: 2, 4096: 12, 8192: 13}
	for leaves, want := range cases {
		if got := COTBudget(leaves); got != want {
			t.Errorf("COTBudget(%d) = %d, want %d", leaves, got, want)
		}
	}
}

func benchSPCOT(b *testing.B, p prg.PRG, leaves int) {
	h := aesprg.NewHash()
	for i := 0; i < b.N; i++ {
		sp, rp, _ := cot.RandomPools(COTBudget(leaves))
		x, y := transport.Pipe()
		go func() { _, _ = Send(x, sp, h, p, leaves) }()
		if _, err := Receive(y, rp, h, p, leaves, i%leaves); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSPCOT4096Binary(b *testing.B) { benchSPCOT(b, prg.New(prg.AES, 2), 4096) }
func BenchmarkSPCOT4096FourAry(b *testing.B) {
	benchSPCOT(b, prg.New(prg.ChaCha8, 4), 4096)
}
