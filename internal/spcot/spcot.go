// Package spcot implements the single-point correlated OT sub-protocol
// Π_SPCOT (§2.3.1 and Figure 3(b) of the paper), generalized to the
// hardware-aware m-ary GGM expansion of §4.
//
// One execution with ℓ leaves gives the sender a random vector w of ℓ
// blocks and the receiver a secret index α plus a vector v such that
//
//	w = v ⊕ u·Δ,   u = one-hot at α,
//
// i.e. v[i] = w[i] everywhere except v[α] = w[α] ⊕ Δ.
//
// Puncturing consumes exactly log2(ℓ) COT correlations regardless of
// the tree arity: a binary level costs one chosen OT, an m-ary level
// costs one (m-1)-out-of-m OT which itself burns log2(m) COTs (§4.2).
//
// The protocol is factored into two phases so the multicore Extend
// pipeline (internal/mpcot) can overlap the compute-bound tree work of
// many executions while keeping their wire flights strictly sequential:
//
//	sender:   ExpandSender (local)  →  (*SenderTree).SendFlights (wire)
//	receiver: ReceiveFlights (wire) →  (*ReceiverFlights).Reconstruct (local)
//
// Send/Receive compose the two phases back to back; the wire transcript
// is identical either way.
package spcot

import (
	"crypto/rand"
	"fmt"

	"ironman/internal/aesprg"
	"ironman/internal/block"
	"ironman/internal/cot"
	"ironman/internal/ggm"
	"ironman/internal/prg"
	"ironman/internal/transport"
)

// COTBudget returns the number of COT correlations one SPCOT execution
// with the given leaf count consumes (= log2(leaves), independent of m).
func COTBudget(leaves int) int {
	budget := 0
	for v := leaves; v > 1; v >>= 1 {
		budget++
	}
	return budget
}

// gadgetDomain separates the per-level all-but-one gadget seeds from
// the GGM expansion of the same root (both are keyed by the secret
// root; distinct domains keep the streams independent).
var gadgetDomain = block.New(0x616231676164, 0x73706367616467)

// SenderTree is the wire-ready material of one expanded GGM tree: the
// per-level position sums the puncturing OTs transfer, the leaf vector
// w, and the gadget seeds of the m-ary levels' all-but-one OTs.
// Expansion is pure local compute, so many SenderTrees can be built
// concurrently before their flights go out one at a time.
type SenderTree struct {
	sums      [][]block.Block
	gadget    []block.Block // per-level all-but-one seeds (m-ary levels only)
	leaves    []block.Block
	xorLeaves block.Block
}

// ExpandSender runs the sender's local phase: expand a GGM tree with
// the given leaf count from seed under p and precompute every level's
// position sums. The m-ary levels' gadget seeds are derived from the
// secret root with domain separation, so the subsequent SendFlights is
// a deterministic function of (seed, pool state). Safe to call
// concurrently (p must be stateless, which all internal/prg
// constructions are).
func ExpandSender(p prg.PRG, leaves int, seed block.Block) *SenderTree {
	arities := ggm.LevelArities(leaves, p.Arity())
	tree := ggm.Expand(p, seed, arities)
	w := tree.Leaves()
	gadget := make([]block.Block, len(arities))
	var gs *aesprg.Stream
	for i, a := range arities {
		if a > 2 {
			if gs == nil {
				gs = aesprg.NewStream(seed.Xor(gadgetDomain))
			}
			gadget[i] = gs.Block()
		}
	}
	return &SenderTree{
		sums:      tree.AllLevelSums(),
		gadget:    gadget,
		leaves:    w,
		xorLeaves: block.XorAll(w),
	}
}

// Leaves returns the tree's leaf vector w (shared storage, do not
// modify).
func (t *SenderTree) Leaves() []block.Block { return t.leaves }

// ReleaseLeaves drops the leaf vector once the caller has copied it
// out. SendFlights needs only the sums, gadget seeds, and leaf XOR, so
// a many-tree caller (mpcot holds all t trees until the flights run)
// halves its peak memory by releasing each tree right after the copy.
func (t *SenderTree) ReleaseLeaves() { t.leaves = nil }

// SendFlights runs the sender's wire phase: one OT per level plus the
// node-recovery message (step ④, XOR of all leaves plus Δ). Flights
// must run in the same sequential order as the receiver's
// ReceiveFlights calls — the pool cursor is part of the transcript.
func (t *SenderTree) SendFlights(conn transport.Conn, pool *cot.SenderPool, h *aesprg.Hash) error {
	for level, sums := range t.sums {
		if len(sums) == 2 {
			// Binary level: direct chosen OT of (K0, K1).
			if err := cot.SendChosen(conn, pool, h, [][2]block.Block{{sums[0], sums[1]}}); err != nil {
				return fmt.Errorf("spcot level %d: %w", level+1, err)
			}
			continue
		}
		// m-ary level: (m-1)-out-of-m OT of the m position sums.
		if err := cot.SendAllButOneSeeded(conn, pool, h, sums, t.gadget[level]); err != nil {
			return fmt.Errorf("spcot level %d: %w", level+1, err)
		}
	}
	c := t.xorLeaves.Xor(pool.Delta)
	return transport.SendBlocks(conn, []block.Block{c})
}

// Send runs the sender side of one SPCOT over conn: expand a GGM tree
// with `leaves` leaves using p, transfer the punctured view, and return
// the leaf vector w. The sender's Δ is pool.Delta.
func Send(conn transport.Conn, pool *cot.SenderPool, h *aesprg.Hash, p prg.PRG, leaves int) ([]block.Block, error) {
	var seedBytes [block.Size]byte
	//ironman:allow(randsrc) the GGM tree root must be fresh system entropy per execution; the deterministic variant is SendWithSeed
	if _, err := rand.Read(seedBytes[:]); err != nil {
		return nil, err
	}
	return SendWithSeed(conn, pool, h, p, leaves, block.FromBytes(seedBytes[:]))
}

// SendWithSeed is Send with a caller-provided tree seed (deterministic
// variant used by tests and the benchmark harness).
func SendWithSeed(conn transport.Conn, pool *cot.SenderPool, h *aesprg.Hash, p prg.PRG, leaves int, seed block.Block) ([]block.Block, error) {
	tree := ExpandSender(p, leaves, seed)
	if err := tree.SendFlights(conn, pool, h); err != nil {
		return nil, err
	}
	return tree.Leaves(), nil
}

// ReceiverFlights is everything the receiver's wire phase collected for
// one execution: the level sums obtained through the puncturing OTs and
// the node-recovery block. Reconstruction from it is pure local
// compute.
type ReceiverFlights struct {
	arities []int
	alpha   int
	sums    [][]block.Block
	c       block.Block
}

// ReceiveFlights runs the receiver's wire phase with punctured index
// alpha: the per-level OTs plus the node-recovery message. The heavy
// tree reconstruction is deferred to (*ReceiverFlights).Reconstruct so
// callers with many executions can parallelize it.
func ReceiveFlights(conn transport.Conn, pool *cot.ReceiverPool, h *aesprg.Hash, p prg.PRG, leaves, alpha int) (*ReceiverFlights, error) {
	if alpha < 0 || alpha >= leaves {
		return nil, fmt.Errorf("spcot: alpha %d out of range [0,%d)", alpha, leaves)
	}
	arities := ggm.LevelArities(leaves, p.Arity())
	digits := ggm.Digits(alpha, arities)

	sums := make([][]block.Block, len(arities))
	for i, a := range arities {
		sums[i] = make([]block.Block, a)
		if a == 2 {
			// Binary level: fetch the sum opposite the path digit.
			got, err := cot.ReceiveChosen(conn, pool, h, []bool{digits[i] == 0})
			if err != nil {
				return nil, fmt.Errorf("spcot level %d: %w", i+1, err)
			}
			sums[i][1-digits[i]] = got[0]
			continue
		}
		got, err := cot.ReceiveAllButOne(conn, pool, h, a, digits[i])
		if err != nil {
			return nil, fmt.Errorf("spcot level %d: %w", i+1, err)
		}
		copy(sums[i], got)
	}
	cs, err := transport.RecvBlocks(conn, 1)
	if err != nil {
		return nil, err
	}
	return &ReceiverFlights{arities: arities, alpha: alpha, sums: sums, c: cs[0]}, nil
}

// Reconstruct runs the receiver's local phase: rebuild every leaf
// except alpha from the collected sums and recover v[alpha] from the
// node-recovery block. Safe to call concurrently across executions.
func (f *ReceiverFlights) Reconstruct(p prg.PRG) []block.Block {
	rec := ggm.Reconstruct(p, f.arities, f.alpha, f.sums)
	v := rec.Leaves
	v[f.alpha] = f.c.Xor(rec.XorKnownLeaves())
	return v
}

// Receive runs the receiver side with punctured index alpha; it returns
// v (length leaves) with v[alpha] = w[alpha] ⊕ Δ.
func Receive(conn transport.Conn, pool *cot.ReceiverPool, h *aesprg.Hash, p prg.PRG, leaves, alpha int) ([]block.Block, error) {
	flights, err := ReceiveFlights(conn, pool, h, p, leaves, alpha)
	if err != nil {
		return nil, err
	}
	return flights.Reconstruct(p), nil
}
