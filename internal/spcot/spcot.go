// Package spcot implements the single-point correlated OT sub-protocol
// Π_SPCOT (§2.3.1 and Figure 3(b) of the paper), generalized to the
// hardware-aware m-ary GGM expansion of §4.
//
// One execution with ℓ leaves gives the sender a random vector w of ℓ
// blocks and the receiver a secret index α plus a vector v such that
//
//	w = v ⊕ u·Δ,   u = one-hot at α,
//
// i.e. v[i] = w[i] everywhere except v[α] = w[α] ⊕ Δ.
//
// Puncturing consumes exactly log2(ℓ) COT correlations regardless of
// the tree arity: a binary level costs one chosen OT, an m-ary level
// costs one (m-1)-out-of-m OT which itself burns log2(m) COTs (§4.2).
package spcot

import (
	"crypto/rand"
	"fmt"

	"ironman/internal/aesprg"
	"ironman/internal/block"
	"ironman/internal/cot"
	"ironman/internal/ggm"
	"ironman/internal/prg"
	"ironman/internal/transport"
)

// COTBudget returns the number of COT correlations one SPCOT execution
// with the given leaf count consumes (= log2(leaves), independent of m).
func COTBudget(leaves int) int {
	budget := 0
	for v := leaves; v > 1; v >>= 1 {
		budget++
	}
	return budget
}

// Send runs the sender side of one SPCOT over conn: expand a GGM tree
// with `leaves` leaves using p, transfer the punctured view, and return
// the leaf vector w. The sender's Δ is pool.Delta.
func Send(conn transport.Conn, pool *cot.SenderPool, h *aesprg.Hash, p prg.PRG, leaves int) ([]block.Block, error) {
	var seedBytes [block.Size]byte
	if _, err := rand.Read(seedBytes[:]); err != nil {
		return nil, err
	}
	return SendWithSeed(conn, pool, h, p, leaves, block.FromBytes(seedBytes[:]))
}

// SendWithSeed is Send with a caller-provided tree seed (deterministic
// variant used by tests and the benchmark harness).
func SendWithSeed(conn transport.Conn, pool *cot.SenderPool, h *aesprg.Hash, p prg.PRG, leaves int, seed block.Block) ([]block.Block, error) {
	arities := ggm.LevelArities(leaves, p.Arity())
	tree := ggm.Expand(p, seed, arities)

	for level := 1; level <= tree.Depth(); level++ {
		sums := tree.LevelSums(level)
		if len(sums) == 2 {
			// Binary level: direct chosen OT of (K0, K1).
			if err := cot.SendChosen(conn, pool, h, [][2]block.Block{{sums[0], sums[1]}}); err != nil {
				return nil, fmt.Errorf("spcot level %d: %w", level, err)
			}
			continue
		}
		// m-ary level: (m-1)-out-of-m OT of the m position sums.
		if err := cot.SendAllButOne(conn, pool, h, sums); err != nil {
			return nil, fmt.Errorf("spcot level %d: %w", level, err)
		}
	}

	// Node-recovery message (step ④): XOR of all leaves plus Δ.
	w := tree.Leaves()
	c := block.XorAll(w).Xor(pool.Delta)
	if err := transport.SendBlocks(conn, []block.Block{c}); err != nil {
		return nil, err
	}
	return w, nil
}

// Receive runs the receiver side with punctured index alpha; it returns
// v (length leaves) with v[alpha] = w[alpha] ⊕ Δ.
func Receive(conn transport.Conn, pool *cot.ReceiverPool, h *aesprg.Hash, p prg.PRG, leaves, alpha int) ([]block.Block, error) {
	if alpha < 0 || alpha >= leaves {
		return nil, fmt.Errorf("spcot: alpha %d out of range [0,%d)", alpha, leaves)
	}
	arities := ggm.LevelArities(leaves, p.Arity())
	digits := ggm.Digits(alpha, arities)

	sums := make([][]block.Block, len(arities))
	for i, a := range arities {
		sums[i] = make([]block.Block, a)
		if a == 2 {
			// Binary level: fetch the sum opposite the path digit.
			got, err := cot.ReceiveChosen(conn, pool, h, []bool{digits[i] == 0})
			if err != nil {
				return nil, fmt.Errorf("spcot level %d: %w", i+1, err)
			}
			sums[i][1-digits[i]] = got[0]
			continue
		}
		got, err := cot.ReceiveAllButOne(conn, pool, h, a, digits[i])
		if err != nil {
			return nil, fmt.Errorf("spcot level %d: %w", i+1, err)
		}
		copy(sums[i], got)
	}
	rec := ggm.Reconstruct(p, arities, alpha, sums)

	cs, err := transport.RecvBlocks(conn, 1)
	if err != nil {
		return nil, err
	}
	v := rec.Leaves
	v[alpha] = cs[0].Xor(rec.XorKnownLeaves())
	return v, nil
}
