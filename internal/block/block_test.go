package block

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBytesRoundTrip(t *testing.T) {
	f := func(lo, hi uint64) bool {
		b := New(lo, hi)
		return FromBytes(b.Bytes()) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXorProperties(t *testing.T) {
	xorSelfZero := func(lo, hi uint64) bool {
		b := New(lo, hi)
		return b.Xor(b).IsZero()
	}
	if err := quick.Check(xorSelfZero, nil); err != nil {
		t.Fatalf("x^x != 0: %v", err)
	}
	xorCommutes := func(a, b, c, d uint64) bool {
		x, y := New(a, b), New(c, d)
		return x.Xor(y) == y.Xor(x)
	}
	if err := quick.Check(xorCommutes, nil); err != nil {
		t.Fatalf("xor not commutative: %v", err)
	}
	xorAssoc := func(a, b, c, d, e, f uint64) bool {
		x, y, z := New(a, b), New(c, d), New(e, f)
		return x.Xor(y).Xor(z) == x.Xor(y.Xor(z))
	}
	if err := quick.Check(xorAssoc, nil); err != nil {
		t.Fatalf("xor not associative: %v", err)
	}
}

func TestBitSetBit(t *testing.T) {
	var b Block
	for _, i := range []int{0, 1, 7, 63, 64, 65, 127} {
		b = b.SetBit(i, 1)
		if b.Bit(i) != 1 {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.OnesCount() != 7 {
		t.Fatalf("OnesCount = %d, want 7", b.OnesCount())
	}
	for _, i := range []int{0, 63, 64, 127} {
		b = b.SetBit(i, 0)
		if b.Bit(i) != 0 {
			t.Fatalf("bit %d not cleared", i)
		}
	}
}

func TestMulBit(t *testing.T) {
	b := New(0xdeadbeef, 0xfeedface)
	if b.MulBit(0) != Zero {
		t.Fatal("MulBit(0) should be zero")
	}
	if b.MulBit(1) != b {
		t.Fatal("MulBit(1) should be identity")
	}
}

func TestSigmaIsPermutation(t *testing.T) {
	// σ must be invertible (it is a linear orthomorphism). Verify the
	// explicit inverse: from (Lo', Hi') = (Lo^Hi, Lo) we recover
	// Lo = Hi', Hi = Lo' ^ Hi'.
	f := func(lo, hi uint64) bool {
		b := New(lo, hi)
		s := b.Sigma()
		inv := Block{Lo: s.Hi, Hi: s.Lo ^ s.Hi}
		return inv == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// σ(x) ⊕ x must also be a permutation of x (orthomorphism property);
	// spot-check injectivity on a sample.
	seen := make(map[Block]bool)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		x := New(rng.Uint64(), rng.Uint64())
		y := x.Sigma().Xor(x)
		if seen[y] {
			t.Fatal("σ(x)^x collision on random sample")
		}
		seen[y] = true
	}
}

func TestSliceHelpers(t *testing.T) {
	a := []Block{New(1, 2), New(3, 4), New(5, 6)}
	b := []Block{New(7, 8), New(9, 10), New(11, 12)}
	dst := make([]Block, 3)
	XorSlices(dst, a, b)
	for i := range dst {
		if dst[i] != a[i].Xor(b[i]) {
			t.Fatalf("XorSlices[%d] wrong", i)
		}
	}
	XorInto(dst, b)
	if !Equal(dst, a) {
		t.Fatal("XorInto should undo the xor")
	}
	if XorAll(a) != a[0].Xor(a[1]).Xor(a[2]) {
		t.Fatal("XorAll wrong")
	}
	if XorAll(nil) != Zero {
		t.Fatal("XorAll(nil) should be zero")
	}
}

func TestToBytesRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		s := make([]Block, int(n)%64)
		for i := range s {
			s[i] = New(rng.Uint64(), rng.Uint64())
		}
		enc := ToBytes(s)
		dec := SliceFromBytes(enc)
		return Equal(s, dec) && bytes.Equal(enc, ToBytes(dec))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	XorSlices(make([]Block, 1), make([]Block, 2), make([]Block, 2))
}

func BenchmarkXorSlices(b *testing.B) {
	n := 4096
	x := make([]Block, n)
	y := make([]Block, n)
	dst := make([]Block, n)
	b.SetBytes(int64(n * Size))
	for i := 0; i < b.N; i++ {
		XorSlices(dst, x, y)
	}
}
