// Package block implements 128-bit blocks, the unit of data in the whole
// OT-extension stack: COT payloads, the global correlation Δ, GGM tree
// nodes and PRG outputs are all single blocks.
//
// A Block is two little-endian uint64 limbs. Lo holds bytes 0..7 and Hi
// holds bytes 8..15 of the canonical byte representation.
package block

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Size is the byte length of a Block.
const Size = 16

// Block is a 128-bit value.
type Block struct {
	Lo, Hi uint64
}

// Zero is the all-zero block.
var Zero Block

// New builds a block from its two limbs.
func New(lo, hi uint64) Block { return Block{Lo: lo, Hi: hi} }

// FromBytes decodes the first 16 bytes of b (little-endian).
func FromBytes(b []byte) Block {
	return Block{
		Lo: binary.LittleEndian.Uint64(b[0:8]),
		Hi: binary.LittleEndian.Uint64(b[8:16]),
	}
}

// Bytes returns the canonical 16-byte encoding.
func (b Block) Bytes() []byte {
	var out [Size]byte
	b.Put(out[:])
	return out[:]
}

// Put writes the 16-byte encoding into dst, which must have length >= 16.
func (b Block) Put(dst []byte) {
	binary.LittleEndian.PutUint64(dst[0:8], b.Lo)
	binary.LittleEndian.PutUint64(dst[8:16], b.Hi)
}

// Xor returns b ^ o.
func (b Block) Xor(o Block) Block { return Block{Lo: b.Lo ^ o.Lo, Hi: b.Hi ^ o.Hi} }

// And returns b & o.
func (b Block) And(o Block) Block { return Block{Lo: b.Lo & o.Lo, Hi: b.Hi & o.Hi} }

// IsZero reports whether b is all zero.
func (b Block) IsZero() bool { return b.Lo == 0 && b.Hi == 0 }

// Bit returns bit i (0 = least significant bit of Lo).
func (b Block) Bit(i int) int {
	if i < 64 {
		return int(b.Lo >> uint(i) & 1)
	}
	return int(b.Hi >> uint(i-64) & 1)
}

// SetBit returns a copy of b with bit i set to v (0 or 1).
func (b Block) SetBit(i, v int) Block {
	if i < 64 {
		b.Lo = b.Lo&^(1<<uint(i)) | uint64(v)<<uint(i)
	} else {
		b.Hi = b.Hi&^(1<<uint(i-64)) | uint64(v)<<uint(i-64)
	}
	return b
}

// OnesCount returns the Hamming weight of b.
func (b Block) OnesCount() int {
	return bits.OnesCount64(b.Lo) + bits.OnesCount64(b.Hi)
}

// MulBit returns b if bit==1 and the zero block otherwise, branch-free.
func (b Block) MulBit(bit uint64) Block {
	m := -(bit & 1) // all ones or all zeros
	return Block{Lo: b.Lo & m, Hi: b.Hi & m}
}

// Sigma applies the linear orthomorphism σ(a||b) = (a⊕b)||a used by the
// MMO correlation-robust hash (Guo et al.): with x = Hi||Lo, σ swaps the
// halves and XORs the high half into the low position.
func (b Block) Sigma() Block {
	return Block{Lo: b.Lo ^ b.Hi, Hi: b.Lo}
}

// String renders the block as 32 hex digits, high limb first.
//
//ironman:allow(secretleak) String is the one sanctioned hex renderer; leaks are caught where blocks meet fmt/log/obs call sites, which covers implicit String uses
func (b Block) String() string { return fmt.Sprintf("%016x%016x", b.Hi, b.Lo) }

// XorSlices sets dst[i] = a[i] ^ b[i] for every i. The three slices must
// have equal length; dst may alias a or b.
func XorSlices(dst, a, b []Block) {
	if len(a) != len(b) || len(dst) != len(a) {
		panic("block: XorSlices length mismatch")
	}
	for i := range dst {
		dst[i] = Block{Lo: a[i].Lo ^ b[i].Lo, Hi: a[i].Hi ^ b[i].Hi}
	}
}

// XorInto sets dst[i] ^= src[i].
func XorInto(dst, src []Block) {
	if len(dst) != len(src) {
		panic("block: XorInto length mismatch")
	}
	for i := range dst {
		dst[i].Lo ^= src[i].Lo
		dst[i].Hi ^= src[i].Hi
	}
}

// XorAll returns the XOR of every block in s (Zero for an empty slice).
func XorAll(s []Block) Block {
	var acc Block
	for _, b := range s {
		acc.Lo ^= b.Lo
		acc.Hi ^= b.Hi
	}
	return acc
}

// ToBytes flattens a block slice into its canonical byte encoding.
func ToBytes(s []Block) []byte {
	out := make([]byte, len(s)*Size)
	for i, b := range s {
		b.Put(out[i*Size:])
	}
	return out
}

// SliceFromBytes parses a flattened encoding produced by ToBytes.
func SliceFromBytes(b []byte) []Block {
	if len(b)%Size != 0 {
		panic("block: SliceFromBytes length not a multiple of 16")
	}
	out := make([]Block, len(b)/Size)
	for i := range out {
		out[i] = FromBytes(b[i*Size:])
	}
	return out
}

// Equal reports whether two block slices are identical.
func Equal(a, b []Block) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
