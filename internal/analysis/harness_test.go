package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// This file is a miniature analysistest: fixtures live GOPATH-style
// under testdata/src/<import path>, stub packages reuse the real
// ironman import paths so path-keyed matching (transport sends, obs
// sinks, block types) behaves exactly as it does under the unitchecker,
// and expected diagnostics are written as trailing
//
//	// want "regexp" ["regexp" ...]
//
// comments on the offending line. x/tools' own analysistest needs
// go/packages, which the vendored distribution subset does not carry —
// this harness needs only the stdlib importer plus CheckPackage.

// fixtureImporter resolves imports from testdata/src first and falls
// back to compiling the standard library from source (the test binary
// has no export data for GOPATH-style fixture builds).
type fixtureImporter struct {
	fset  *token.FileSet
	root  string
	std   types.Importer
	cache map[string]*fixturePkg
}

type fixturePkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

var fixtureLoader = struct {
	once sync.Once
	imp  *fixtureImporter
}{}

func loader(t *testing.T) *fixtureImporter {
	t.Helper()
	fixtureLoader.once.Do(func() {
		fset := token.NewFileSet()
		fixtureLoader.imp = &fixtureImporter{
			fset:  fset,
			root:  filepath.Join("testdata", "src"),
			std:   importer.ForCompiler(fset, "source", nil),
			cache: make(map[string]*fixturePkg),
		}
	})
	return fixtureLoader.imp
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	p, err := fi.load(path)
	if err != nil {
		return nil, err
	}
	return p.pkg, nil
}

func (fi *fixtureImporter) load(path string) (*fixturePkg, error) {
	if p, ok := fi.cache[path]; ok {
		return p, nil
	}
	dir := filepath.Join(fi.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		pkg, err := fi.std.Import(path)
		if err != nil {
			return nil, err
		}
		p := &fixturePkg{pkg: pkg}
		fi.cache[path] = p
		return p, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fi.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: fi}
	pkg, err := conf.Check(path, fi.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	p := &fixturePkg{pkg: pkg, files: files, info: info}
	fi.cache[path] = p
	return p, nil
}

var (
	wantLineRe  = regexp.MustCompile(`//\s*want\s+(.*)$`)
	wantQuoteRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
)

// expectation is one unmatched // want entry.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantLineRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantQuoteRe.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(q[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, q[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// runFixture runs exactly one analyzer over one fixture package and
// diffs its diagnostics against the fixture's // want comments.
func runFixture(t *testing.T, a *analysis.Analyzer, path string) {
	t.Helper()
	fi := loader(t)
	p, err := fi.load(path)
	if err != nil {
		t.Fatalf("load fixture %s: %v", path, err)
	}
	findings := RunAnalyzers(fi.fset, p.files, p.pkg, p.info, []*analysis.Analyzer{a})
	wants := parseWants(t, fi.fset, p.files)

	matched := make([]bool, len(wants))
	for _, f := range findings {
		hit := false
		for i, w := range wants {
			if !matched[i] && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
				matched[i] = true
				hit = true
				break
			}
		}
		if !hit {
			t.Errorf("unexpected diagnostic at %s: %s", f.Pos, f.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
	if t.Failed() {
		var got []string
		for _, f := range findings {
			got = append(got, f.String())
		}
		sort.Strings(got)
		t.Logf("all diagnostics from %s on %s:\n%s", a.Name, path, strings.Join(got, "\n"))
	}
}
