package analysis

import (
	"os/exec"
	"strings"
	"testing"
)

// TestModuleVetClean runs the whole ironman-vet suite over the whole
// module in-process, so a plain `go test ./...` enforces the protocol
// invariants even when nobody wires up the vettool. Every finding here
// is a regression: pre-existing ones were fixed or carry an audited
// //ironman:allow directive.
func TestModuleVetClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module analysis in -short mode")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}
	findings, err := CheckModule("../..", Analyzers)
	if err != nil {
		t.Fatalf("CheckModule: %v", err)
	}
	if len(findings) > 0 {
		var lines []string
		for _, f := range findings {
			lines = append(lines, f.String())
		}
		t.Errorf("ironman-vet found %d invariant violation(s); fix them or add //ironman:allow(<analyzer>) <reason>:\n%s",
			len(findings), strings.Join(lines, "\n"))
	}
}
