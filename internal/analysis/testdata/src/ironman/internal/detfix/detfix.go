// Package detfix exercises detrange: nondeterminism sources on
// transcript-relevant paths fire, order-insensitive and off-wire code
// stays silent.
package detfix

import (
	"math/rand"
	"runtime"
	"sort"
	"time"

	"ironman/internal/transport"
)

// sendLoop sends map values in iteration order: the canonical
// transcript-divergence bug.
func sendLoop(c transport.Conn, m map[int][]byte) error {
	for _, v := range m { // want "map iteration order in sendLoop is transcript-relevant"
		if err := c.Send(v); err != nil {
			return err
		}
	}
	return nil
}

// stamp mixes every non-range nondeterminism source into a function
// that sends.
func stamp(c transport.Conn) error {
	t := time.Now() // want "time.Now in stamp is transcript-relevant"
	_ = t
	n := rand.Int() // want "math/rand.Int in stamp is transcript-relevant"
	_ = n
	w := runtime.GOMAXPROCS(0) // want "runtime.GOMAXPROCS in stamp is transcript-relevant"
	_ = w
	return c.Send(nil)
}

// helper reaches a send only through sendLoop; sources here are still
// transcript-relevant.
func helper(c transport.Conn, m map[int][]byte) error {
	d := time.Now() // want "time.Now in helper is transcript-relevant"
	_ = d
	return sendLoop(c, m)
}

// collectSorted is the compliant idiom: an append-only map range
// followed by a sort is exempt.
func collectSorted(c transport.Conn, m map[int][]byte) error {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		if err := c.Send(m[k]); err != nil {
			return err
		}
	}
	return nil
}

// offWire never reaches a transport send; map order is its own
// business.
func offWire(m map[int]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}

// auditedSend carries a justified suppression.
func auditedSend(c transport.Conn, m map[int][]byte) error {
	//ironman:allow(detrange) fixture: the peer decodes these frames order-independently
	for _, v := range m {
		if err := c.Send(v); err != nil {
			return err
		}
	}
	return nil
}

// badDirective has a directive with no reason: the finding survives,
// annotated.
func badDirective(c transport.Conn, m map[int][]byte) error {
	//ironman:allow(detrange)
	for _, v := range m { // want "must carry a reason"
		if err := c.Send(v); err != nil {
			return err
		}
	}
	return nil
}

// wrongAnalyzer names a different analyzer: no suppression.
func wrongAnalyzer(c transport.Conn, m map[int][]byte) error {
	//ironman:allow(randsrc) fixture: names the wrong analyzer
	for _, v := range m { // want "map iteration order in wrongAnalyzer is transcript-relevant"
		if err := c.Send(v); err != nil {
			return err
		}
	}
	return nil
}
