// Package block is a stub of the real ironman/internal/block; only the
// Block type identity matters to secretleak.
package block

// Size is the block width in bytes.
const Size = 16

// Block is a 128-bit correlation block.
type Block struct{ Hi, Lo uint64 }
