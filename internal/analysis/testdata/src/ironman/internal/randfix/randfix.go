// Package randfix exercises randsrc: math/rand is banned outright,
// crypto/rand is fine in constructors/dealers and flagged elsewhere.
package randfix

import (
	"crypto/rand"
	mrand "math/rand" // want "math/rand imported in protocol code"
)

var _ = mrand.Int

// NewKeys is a constructor; fresh system entropy is expected here.
func NewKeys() ([]byte, error) {
	b := make([]byte, 16)
	_, err := rand.Read(b)
	return b, err
}

// DealPair is a dealer; same policy as a constructor.
func DealPair() ([]byte, error) {
	b := make([]byte, 32)
	_, err := rand.Read(b)
	return b, err
}

// refresh draws mid-protocol randomness from crypto/rand: flagged.
func refresh() ([]byte, error) {
	b := make([]byte, 16)
	_, err := rand.Read(b) // want "crypto/rand.Read outside a setup-time function \(refresh\)"
	return b, err
}

// audited carries a justified suppression.
func audited() ([]byte, error) {
	b := make([]byte, 16)
	//ironman:allow(randsrc) fixture: this draw is audited fresh entropy
	_, err := rand.Read(b)
	return b, err
}
