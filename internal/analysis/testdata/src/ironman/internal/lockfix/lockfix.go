// Package lockfix exercises locknet: transport I/O and send-reaching
// calls inside a mutex-held region fire; I/O after Unlock, in function
// literals, and with an audited reason stay silent.
package lockfix

import (
	"sync"

	"ironman/internal/transport"
)

type box struct {
	mu sync.Mutex
	c  transport.Conn
}

func (b *box) bad(p []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.c.Send(p) // want "transport.Send while holding b.mu"
}

func (b *box) badRecv() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, err := b.c.Recv() // want "transport.Recv while holding b.mu"
	return err
}

// good stages under the lock and sends outside it.
func (b *box) good(p []byte) error {
	b.mu.Lock()
	req := append([]byte(nil), p...)
	b.mu.Unlock()
	return b.c.Send(req)
}

// viaHelper reaches a send through a same-package call.
func (b *box) viaHelper(p []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	_ = b.roundTrip(p) // want "reaches a transport send\) while holding b.mu"
}

func (b *box) roundTrip(p []byte) error {
	if err := b.c.Send(p); err != nil {
		return err
	}
	_, err := b.c.Recv()
	return err
}

// goroutine bodies run on their own call path, outside this critical
// section.
func (b *box) funcLit(p []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		_ = b.c.Send(p)
	}()
}

func (b *box) audited(p []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	//ironman:allow(locknet) fixture: this mutex is the connection serializer
	return b.c.Send(p)
}
