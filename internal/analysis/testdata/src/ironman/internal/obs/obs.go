// Package obs is a stub of the real ironman/internal/obs; every
// function here is a secretleak sink by package path.
package obs

// Labels renders metric label pairs.
func Labels(kv ...string) string { return "" }

// Span opens a named trace span.
func Span(name string) {}
