// Package transport is a stub of the real ironman/internal/transport:
// the fixtures only need the import path and the Send/Recv/Close
// surface the analyzers key on.
package transport

import "io"

// Conn mirrors the real transport.Conn: Send/Recv declared directly,
// Close promoted from an embedded stdlib interface (which is exactly
// the shape wireerr's receiver-type fallback exists for).
type Conn interface {
	Send(b []byte) error
	Recv() ([]byte, error)
	io.Closer
}
