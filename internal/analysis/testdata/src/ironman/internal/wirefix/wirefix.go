// Package wirefix exercises wireerr: silently discarded errors from
// ironman protocol calls fire; handled errors and explicit _ discards
// stay silent.
package wirefix

import "ironman/internal/transport"

func flush(c transport.Conn, b []byte) error { return c.Send(b) }

func drop(c transport.Conn, b []byte) {
	c.Send(b)       // want "call error from transport.Send is silently discarded"
	defer c.Close() // want "deferred error from transport.Conn.Close is silently discarded"
	go flush(c, b)  // want "go-statement error from wirefix.flush is silently discarded"
}

func explicit(c transport.Conn, b []byte) {
	_ = c.Send(b)
	if err := c.Send(b); err != nil {
		_ = err
	}
}

func audited(c transport.Conn) {
	//ironman:allow(wireerr) fixture: best-effort close on an already-failed conn
	c.Close()
}
