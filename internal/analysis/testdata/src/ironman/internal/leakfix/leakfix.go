// Package leakfix exercises secretleak: secret-named values and
// correlation blocks reaching fmt/log/obs sinks fire; benign
// projections, lengths, package qualifiers, and propagated errors stay
// silent.
package leakfix

import (
	"errors"
	"fmt"
	"go/token"
	"log"

	"ironman/internal/block"
	"ironman/internal/obs"
)

func logDelta(delta block.Block) {
	fmt.Printf("delta=%v\n", delta) // want "delta flows into fmt.Printf"
}

func labelToken(tokenS string) string {
	return obs.Labels("session", tokenS) // want "tokenS flows into obs.Labels"
}

func seedErr(seed []byte) error {
	return fmt.Errorf("bad seed %x", seed) // want "seed flows into fmt.Errorf"
}

// limbs leaks both halves of a block through field selection.
func limbs(b block.Block) string {
	return fmt.Sprintf("%x%x", b.Hi, b.Lo) // want "correlation value flows into fmt.Sprintf" "correlation value flows into fmt.Sprintf"
}

// propagate taints a local through assignment.
func propagate(delta block.Block) {
	d2 := delta
	log.Print(d2) // want "d2 flows into log.Print"
}

// okLen: the length of a secret buffer is a benign size.
func okLen(seed []byte) {
	log.Printf("seed length %d", len(seed))
}

// okErr: an error returned by a call that consumed the secret is not
// itself the secret.
func okErr(seed []byte) {
	err := useSeed(seed)
	if err != nil {
		log.Print(err)
	}
}

func useSeed(seed []byte) error {
	if len(seed) == 0 {
		return errors.New("empty")
	}
	return nil
}

// okQualifier: a package named like a secret (go/token) is a
// qualifier, not a value.
func okQualifier() {
	fset := token.NewFileSet()
	log.Print(fset.Base())
}

type sess struct {
	id     int
	tokenS string
}

// okProjection: selecting a benign field out of a struct that also
// holds secrets does not leak them.
func okProjection(s *sess) {
	log.Printf("session %d", s.id)
}

// audited carries a justified suppression.
func audited(delta block.Block) {
	//ironman:allow(secretleak) fixture: audited debug dump behind a build tag
	fmt.Println(delta)
}
