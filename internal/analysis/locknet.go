package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Locknet forbids network I/O while a mutex is held. The pool and
// otserv design threads metric updates through mutex-held points (the
// Observer contract depends on it), and one transport round trip under
// such a lock turns a microsecond critical section into a
// network-latency one — or a deadlock when the peer's reply needs the
// same lock. The scan is syntactic and per-function: a sync
// Lock/RLock on an expression opens a held region, the matching
// Unlock/RUnlock closes it, a deferred Unlock holds to function end;
// in a held region, direct transport Send/Recv calls, calls into
// same-package functions that reach a send, and net dials are flagged.
var Locknet = &analysis.Analyzer{
	Name: "locknet",
	Doc: "flag network I/O (transport send/recv, net dials) while holding a sync mutex\n\n" +
		"Move the I/O outside the critical section or suppress with //ironman:allow(locknet) <reason>.",
	Run: runLocknet,
}

// lockKind classifies a call as acquiring or releasing a sync lock,
// returning the receiver expression and +1/-1 (0 when not a lock op).
func lockKind(info *types.Info, call *ast.CallExpr) (recv string, dir int) {
	f := calleeOf(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", 0
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0
	}
	recv = types.ExprString(sel.X)
	switch f.Name() {
	case "Lock", "RLock":
		return recv, +1
	case "Unlock", "RUnlock":
		return recv, -1
	}
	return "", 0
}

// netIO classifies a callee as network I/O for the purposes of this
// check, returning a label or "".
func netIO(f *types.Func, reach map[*types.Func]bool) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	if isTransportIO(f) {
		return "transport." + f.Name()
	}
	if f.Pkg().Path() == "net" && (strings.HasPrefix(f.Name(), "Dial") || f.Name() == "Listen") {
		return "net." + f.Name()
	}
	if reach[f] {
		return f.Name() + " (reaches a transport send)"
	}
	return ""
}

func runLocknet(pass *analysis.Pass) (interface{}, error) {
	idx := buildAllowIndex(pass)
	g := buildCallGraph(pass)
	reach := g.reachesSend()
	for _, fd := range g.decls {
		held := make(map[string]bool)
		scanLocknet(pass, idx, reach, fd.Body.List, held)
	}
	return nil, nil
}

// scanLocknet walks a statement list in order, tracking the held-lock
// set. Branch bodies get a copy of the set so an early-return unlock
// in one arm does not bleed into the fall-through path.
func scanLocknet(pass *analysis.Pass, idx allowIndex, reach map[*types.Func]bool, stmts []ast.Stmt, held map[string]bool) {
	copyHeld := func() map[string]bool {
		c := make(map[string]bool, len(held))
		for k := range held {
			c[k] = true
		}
		return c
	}
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.BlockStmt:
			scanLocknet(pass, idx, reach, s.List, held)
			continue
		case *ast.IfStmt:
			if s.Init != nil {
				scanLocknet(pass, idx, reach, []ast.Stmt{s.Init}, held)
			}
			checkCalls(pass, idx, reach, s.Cond, held)
			scanLocknet(pass, idx, reach, s.Body.List, copyHeld())
			if s.Else != nil {
				scanLocknet(pass, idx, reach, []ast.Stmt{s.Else}, copyHeld())
			}
			continue
		case *ast.ForStmt:
			scanLocknet(pass, idx, reach, s.Body.List, copyHeld())
			continue
		case *ast.RangeStmt:
			checkCalls(pass, idx, reach, s.X, held)
			scanLocknet(pass, idx, reach, s.Body.List, copyHeld())
			continue
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			var clauses []ast.Stmt
			switch s := s.(type) {
			case *ast.SwitchStmt:
				clauses = s.Body.List
			case *ast.TypeSwitchStmt:
				clauses = s.Body.List
			case *ast.SelectStmt:
				clauses = s.Body.List
			}
			for _, c := range clauses {
				switch c := c.(type) {
				case *ast.CaseClause:
					scanLocknet(pass, idx, reach, c.Body, copyHeld())
				case *ast.CommClause:
					scanLocknet(pass, idx, reach, c.Body, copyHeld())
				}
			}
			continue
		case *ast.DeferStmt:
			// A deferred Unlock keeps the lock held to function end
			// (no set change); any other deferred call runs after the
			// locks this scan knows about are gone, so only its own
			// body matters — and function literals are scanned
			// independently by checkCalls below.
			if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
				scanLocknet(pass, idx, reach, lit.Body.List, make(map[string]bool))
			}
			continue
		}
		checkCalls(pass, idx, reach, stmt, held)
	}
}

// checkCalls inspects one statement or expression for lock transitions
// and, while any lock is held, network I/O. Function literals are
// scanned with a fresh held set: they execute later, on their own
// goroutine or call path.
func checkCalls(pass *analysis.Pass, idx allowIndex, reach map[*types.Func]bool, n ast.Node, held map[string]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			scanLocknet(pass, idx, reach, n.Body.List, make(map[string]bool))
			return false
		case *ast.CallExpr:
			if recv, dir := lockKind(pass.TypesInfo, n); dir != 0 {
				if dir > 0 {
					held[recv] = true
				} else {
					delete(held, recv)
				}
				return true
			}
			if len(held) == 0 {
				return true
			}
			if label := netIO(calleeOf(pass.TypesInfo, n), reach); label != "" {
				report(pass, idx, n.Pos(), fmt.Sprintf(
					"%s while holding %s; network I/O under a mutex stalls every other holder — move it outside the critical section or add //ironman:allow(locknet) <reason>",
					label, heldNames(held)))
			}
		}
		return true
	})
}

func heldNames(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
