package analysis

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// transportPath is the package every wire byte of the protocol funnels
// through. Reaching one of its Send functions is what makes code
// transcript-relevant.
const transportPath = "ironman/internal/transport"

// calleeOf resolves the static callee of a call, or nil for dynamic
// calls (function values, field closures) and conversions.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isTransportSend reports whether f puts bytes on the wire: a
// transport package function or method whose name starts with Send.
func isTransportSend(f *types.Func) bool {
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == transportPath &&
		strings.HasPrefix(f.Name(), "Send")
}

// isTransportIO additionally covers the receive direction (locknet
// blocks both while a mutex is held).
func isTransportIO(f *types.Func) bool {
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == transportPath &&
		(strings.HasPrefix(f.Name(), "Send") || strings.HasPrefix(f.Name(), "Recv"))
}

// callGraph is the package-local static call graph. Dynamic calls
// (function fields, closures passed around) are not edges; the suite is
// deliberately package-local and best-effort — the replay tests remain
// the ground truth, the analyzers make the common regressions cheap to
// catch.
type callGraph struct {
	decls map[*types.Func]*ast.FuncDecl
	calls map[*types.Func][]*types.Func // edges to same-package callees
	sends map[*types.Func]bool          // contains a direct transport send
}

// buildCallGraph walks every non-test function declaration once.
// Function literals are attributed to their enclosing declaration:
// a closure defined inside F that sends makes F send-containing.
func buildCallGraph(pass *analysis.Pass) *callGraph {
	g := &callGraph{
		decls: make(map[*types.Func]*ast.FuncDecl),
		calls: make(map[*types.Func][]*types.Func),
		sends: make(map[*types.Func]bool),
	}
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.decls[obj] = fd
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := calleeOf(pass.TypesInfo, call)
				if f == nil {
					return true
				}
				if isTransportSend(f) {
					g.sends[obj] = true
				} else if f.Pkg() == pass.Pkg {
					g.calls[obj] = append(g.calls[obj], f)
				}
				return true
			})
		}
	}
	return g
}

// reachesSend computes the functions that can (via package-local
// static calls) put bytes on the wire.
func (g *callGraph) reachesSend() map[*types.Func]bool {
	reach := make(map[*types.Func]bool, len(g.sends))
	for f := range g.sends {
		reach[f] = true
	}
	for changed := true; changed; {
		changed = false
		for caller, callees := range g.calls {
			if reach[caller] {
				continue
			}
			for _, c := range callees {
				if reach[c] {
					reach[caller] = true
					changed = true
					break
				}
			}
		}
	}
	return reach
}

// sendInvolved computes the transcript-relevant set: functions that
// can reach a send (their control flow decides what is sent) plus
// everything a send-containing function transitively calls (their
// results feed what is sent). otserv's statsDump is the canonical
// member of the second class: it never sends itself, but its output is
// the payload handleConn ships.
func (g *callGraph) sendInvolved() map[*types.Func]bool {
	involved := g.reachesSend()
	work := make([]*types.Func, 0, len(g.sends))
	for f := range g.sends {
		work = append(work, f)
	}
	seen := make(map[*types.Func]bool, len(g.sends))
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[f] {
			continue
		}
		seen[f] = true
		involved[f] = true
		work = append(work, g.calls[f]...)
	}
	return involved
}
