package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Wireerr flags silently discarded errors from this module's protocol
// surfaces (expression statements, defers, and go statements calling
// ironman functions whose last result is an error). A swallowed Send
// or Close error is the exact desync class PR 4's chunking work fixed
// by hand: one party fails mid-flight, the other keeps waiting on a
// transcript position that will never arrive. Assigning to _ is an
// explicit, reviewable discard and is accepted; an invisible discard
// is not. This is deliberately narrower than errcheck: only the
// module's own wire-bearing packages are in scope, so the signal stays
// high.
var Wireerr = &analysis.Analyzer{
	Name: "wireerr",
	Doc: "flag discarded errors from ironman protocol calls (transport/cot/gmw/otserv send-recv-close paths)\n\n" +
		"Handle the error, assign it to _, or suppress with //ironman:allow(wireerr) <reason>.",
	Run: runWireerr,
}

// ironmanPath reports whether a package path belongs to this module's
// protocol surface: the root package or any internal package.
func ironmanPath(path string) bool {
	return path == "ironman" || strings.HasPrefix(path, "ironman/internal/")
}

// wireScoped reports whether the call is part of this module's protocol
// surface, returning a qualified name for the diagnostic or "". In
// scope: callees declared in the root package or an internal package,
// and — for methods promoted from embedded stdlib interfaces, like
// transport.Conn's io.Closer — calls whose receiver's static type is.
func wireScoped(info *types.Info, call *ast.CallExpr, f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	if ironmanPath(f.Pkg().Path()) {
		return f.Pkg().Name() + "." + f.Name()
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	t := info.TypeOf(sel.X)
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return ""
	}
	if !ironmanPath(named.Obj().Pkg().Path()) {
		return ""
	}
	return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + f.Name()
}

// returnsError reports whether f's last result is the error type.
func returnsError(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

func runWireerr(pass *analysis.Pass) (interface{}, error) {
	idx := buildAllowIndex(pass)
	check := func(call *ast.CallExpr, how string) {
		f := calleeOf(pass.TypesInfo, call)
		name := wireScoped(pass.TypesInfo, call, f)
		if name == "" || !returnsError(f) {
			return
		}
		report(pass, idx, call.Pos(), fmt.Sprintf(
			"%s error from %s is silently discarded (desync risk); handle it, assign to _, or add //ironman:allow(wireerr) <reason>",
			how, name))
	}
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					check(call, "call")
				}
			case *ast.DeferStmt:
				check(n.Call, "deferred")
			case *ast.GoStmt:
				check(n.Call, "go-statement")
			}
			return true
		})
	}
	return nil, nil
}
