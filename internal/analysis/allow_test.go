package analysis

import (
	"reflect"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text   string
		names  []string
		reason string
		ok     bool
	}{
		{"ironman:allow(detrange) map order is rendered client-side", []string{"detrange"}, "map order is rendered client-side", true},
		{" ironman:allow(randsrc) leading space is fine", []string{"randsrc"}, "leading space is fine", true},
		{"ironman:allow(detrange,randsrc) two analyzers, one audit", []string{"detrange", "randsrc"}, "two analyzers, one audit", true},
		{"ironman:allow( wireerr , locknet )\ttabs and spaces", []string{"wireerr", "locknet"}, "tabs and spaces", true},
		{"ironman:allow(secretleak)", []string{"secretleak"}, "", true},
		{"ironman:allow(secretleak)   ", []string{"secretleak"}, "", true},
		{"ironman:allow()", nil, "", true},
		{"ironman:allow(a,)", []string{"a"}, "", true},
		{"ironman:allowed(detrange) not the directive", nil, "", false},
		{"go:generate ironman-vet", nil, "", false},
		{"plain comment", nil, "", false},
		{"ironman:allow no parens", nil, "", false},
	}
	for _, c := range cases {
		names, reason, ok := ParseAllow(c.text)
		if ok != c.ok || reason != c.reason || !reflect.DeepEqual(names, c.names) {
			t.Errorf("ParseAllow(%q) = %v, %q, %v; want %v, %q, %v",
				c.text, names, reason, ok, c.names, c.reason, c.ok)
		}
	}
}
