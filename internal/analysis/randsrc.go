package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Randsrc enforces the repo's randomness discipline in non-test
// internal/ code: math/rand is banned outright (it is neither
// cryptographically secure nor transcript-safe), and crypto/rand may
// only appear at setup-time call sites — mid-protocol randomness must
// come from the seeded aesprg/chacha/prg streams so dealt runs replay
// byte-identically. "Setup-time" means the enclosing function is a
// constructor or dealer (name prefix new/deal/setup/open, any case) or
// the whole package is setup-phase (base-OT initialization). Anything
// else needs an audited //ironman:allow(randsrc) <reason>.
var Randsrc = &analysis.Analyzer{
	Name: "randsrc",
	Doc: "ban math/rand and restrict crypto/rand to setup-time call sites in internal/ packages\n\n" +
		"Mid-protocol randomness must come from the seeded PRG streams; audited exceptions use //ironman:allow(randsrc) <reason>.",
	Run: runRandsrc,
}

// setupPackages run once at initialization (base OTs and the IKNP
// bootstrap); every draw of randomness there is setup by construction.
var setupPackages = map[string]bool{
	"ironman/internal/baseot": true,
	"ironman/internal/iknp":   true,
}

// setupPrefixes mark constructor/dealer functions where fresh
// crypto/rand material (keys, Δ, tokens, PRG seeds) is expected.
var setupPrefixes = []string{"new", "deal", "setup", "open"}

func isSetupFunc(name string) bool {
	lower := strings.ToLower(name)
	for _, p := range setupPrefixes {
		if strings.HasPrefix(lower, p) {
			return true
		}
	}
	return false
}

func runRandsrc(pass *analysis.Pass) (interface{}, error) {
	path := pass.Pkg.Path()
	if !strings.Contains(path, "/internal/") || setupPackages[path] {
		return nil, nil
	}
	idx := buildAllowIndex(pass)
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, imp := range file.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "math/rand", "math/rand/v2":
				report(pass, idx, imp.Pos(), fmt.Sprintf(
					"%s imported in protocol code; use the seeded aesprg/chacha/prg streams (math/rand is neither secure nor replay-deterministic)",
					strings.Trim(imp.Path.Value, `"`)))
			}
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			setup := isSetupFunc(fd.Name.Name)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				f := calleeOf(pass.TypesInfo, call)
				if !isCryptoRand(f) {
					return true
				}
				if !setup {
					report(pass, idx, call.Pos(), fmt.Sprintf(
						"crypto/rand.%s outside a setup-time function (%s); draw from the session's seeded PRG stream or add //ironman:allow(randsrc) <reason>",
						f.Name(), fd.Name.Name))
				}
				return false
			})
		}
	}
	return nil, nil
}

func isCryptoRand(f *types.Func) bool {
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == "crypto/rand"
}
