package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Secretleak is a taint-lite pass keeping secret material out of the
// human-readable surfaces: Δ-correlations, PRG/GGM seeds, and attach
// tokens must never flow into fmt/log error strings or obs metric
// names, labels, and span names (logs and /metrics are scraped and
// shipped places ciphertext keys must not go). Two taint rules, both
// deliberately shallow: an identifier whose name contains
// delta/seed/token/secret, or any value of (or containing) the
// correlation type block.Block. One level of local-assignment
// propagation; no cross-function flow — this catches the way leaks are
// actually written, not every way they could be laundered.
var Secretleak = &analysis.Analyzer{
	Name: "secretleak",
	Doc: "flag secret material (Δ, seeds, tokens, correlation blocks) flowing into fmt/log/obs sinks\n\n" +
		"Suppress audited exceptions with //ironman:allow(secretleak) <reason>.",
	Run: runSecretleak,
}

const obsPath = "ironman/internal/obs"

var secretNames = []string{"delta", "seed", "token", "secret"}

func taintedName(name string) bool {
	lower := strings.ToLower(name)
	for _, s := range secretNames {
		if strings.Contains(lower, s) {
			return true
		}
	}
	return false
}

// isBlockType reports whether t is block.Block or a slice/array/pointer
// of it — the type every COT correlation and Δ lives in.
func isBlockType(t types.Type) bool {
	switch t := t.(type) {
	case *types.Slice:
		return isBlockType(t.Elem())
	case *types.Array:
		return isBlockType(t.Elem())
	case *types.Pointer:
		return isBlockType(t.Elem())
	case *types.Named:
		obj := t.Obj()
		return obj != nil && obj.Pkg() != nil &&
			obj.Pkg().Path() == "ironman/internal/block" && obj.Name() == "Block"
	}
	return false
}

// sinkKind classifies a callee as a human-readable sink, returning a
// label for the diagnostic or "".
func sinkKind(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	name := f.Name()
	switch f.Pkg().Path() {
	case "fmt":
		for _, p := range []string{"Print", "Sprint", "Fprint", "Errorf", "Append"} {
			if strings.HasPrefix(name, p) {
				return "fmt." + name
			}
		}
	case "log", "log/slog":
		return f.Pkg().Path() + "." + name
	case "errors":
		if name == "New" {
			return "errors.New"
		}
	case obsPath:
		return "obs." + name
	}
	return ""
}

func runSecretleak(pass *analysis.Pass) (interface{}, error) {
	idx := buildAllowIndex(pass)
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			locals := taintedLocals(pass.TypesInfo, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sink := sinkKind(calleeOf(pass.TypesInfo, call))
				if sink == "" {
					return true
				}
				for _, arg := range call.Args {
					if name, ok := taintedExpr(pass.TypesInfo, arg, locals); ok {
						report(pass, idx, arg.Pos(), fmt.Sprintf(
							"%s flows into %s; secret material must not reach logs, error strings, or metric labels — redact it or add //ironman:allow(secretleak) <reason>",
							name, sink))
					}
				}
				return true
			})
		}
	}
	return nil, nil
}

// taintedLocals runs two fixpoint rounds over the function's
// assignments, collecting local names bound to tainted expressions.
// Propagation is position-pairwise only (x := taintedExpr); the
// multi-value form `v, err := f(...)` is not an information flow from
// f's arguments into err, and block-typed results are already caught
// by their type at the use site.
func taintedLocals(info *types.Info, fd *ast.FuncDecl) map[string]bool {
	locals := make(map[string]bool)
	for round := 0; round < 2; round++ {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				if _, ok := taintedExpr(info, rhs, locals); !ok {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				// An error built from a call that took secret
				// arguments is not itself the secret; the callee's
				// own fmt sites are checked in its package.
				if t := info.TypeOf(id); t != nil && types.Identical(t, types.Universe.Lookup("error").Type()) {
					continue
				}
				locals[id.Name] = true
			}
			return true
		})
	}
	return locals
}

// taintedExpr reports whether any identifier inside e has a secret
// name (or is a tainted local), or any sub-expression carries the
// correlation block type. The returned name describes the taint for
// the diagnostic.
func taintedExpr(info *types.Info, e ast.Expr, locals map[string]bool) (string, bool) {
	var hit string
	ast.Inspect(e, func(n ast.Node) bool {
		if hit != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			// len/cap of a secret buffer is a benign size, and an
			// error-typed call result is not the secret its
			// arguments were (the callee's own sinks are checked in
			// its package) — but still walk the arguments: a tainted
			// value passed TO a sink-adjacent call like hex.Encode
			// inside the arg list stays visible.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && (id.Name == "len" || id.Name == "cap") {
					return false
				}
			}
		case *ast.SelectorExpr:
			// Field selection projects taint by its own name and
			// type, not the base's: sess.id is a public counter even
			// when sess also holds tokens. Check Sel and the selected
			// type here, then stop — do not descend into X.
			if taintedName(n.Sel.Name) || locals[n.Sel.Name] {
				hit = n.Sel.Name
				return false
			}
			if t := info.TypeOf(n); t != nil && isBlockType(t) {
				hit = "a block.Block correlation value"
				return false
			}
			// A field of a correlation block (b.Hi, b.Lo) is raw
			// secret bits even when the field's own type is plain.
			if t := info.TypeOf(n.X); t != nil && isBlockType(t) {
				hit = "a block.Block correlation value"
			}
			return false
		case *ast.Ident:
			// A package qualifier (go/token's `token.NewFileSet`) is
			// not a value; only value identifiers carry taint.
			if _, isPkg := info.Uses[n].(*types.PkgName); isPkg {
				return false
			}
			if taintedName(n.Name) || locals[n.Name] {
				hit = n.Name
				return false
			}
			if t := info.TypeOf(n); t != nil && isBlockType(t) {
				hit = "a block.Block correlation value"
				return false
			}
		case ast.Expr:
			if t := info.TypeOf(n); t != nil && isBlockType(t) {
				hit = "a block.Block correlation value"
				return false
			}
		}
		return true
	})
	return hit, hit != ""
}
