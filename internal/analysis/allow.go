package analysis

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// The suppression directive. A finding is suppressed by writing
//
//	//ironman:allow(<analyzer>[,<analyzer>...]) <reason>
//
// either trailing the offending line or on the line immediately above
// it. The reason is mandatory: a directive without one does not
// suppress — the finding is reported with a note instead — so every
// silenced invariant violation carries its audit trail in the source.
const allowPrefix = "ironman:allow("

var allowRe = regexp.MustCompile(`^ironman:allow\(([^)]*)\)[ \t]*(.*)$`)

// ParseAllow parses one comment's text (with the // or /* */ markers
// already stripped, as go/ast stores it) as a suppression directive.
// ok reports whether the text is an ironman:allow directive at all;
// names and reason are its parsed parts (reason may be empty, which
// report treats as malformed).
func ParseAllow(text string) (names []string, reason string, ok bool) {
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, allowPrefix) {
		return nil, "", false
	}
	m := allowRe.FindStringSubmatch(text)
	if m == nil {
		return nil, "", false
	}
	for _, n := range strings.Split(m[1], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, strings.TrimSpace(m[2]), true
}

// allowDirective is one parsed directive anchored to a source line.
type allowDirective struct {
	names  []string
	reason string
	pos    token.Pos
}

func (d *allowDirective) covers(analyzer string) bool {
	for _, n := range d.names {
		if n == analyzer {
			return true
		}
	}
	return false
}

// allowIndex maps file name -> line -> directives claiming that line.
// A directive claims its own line and the following one, so both
// trailing and preceding-line placement work.
type allowIndex map[string]map[int][]*allowDirective

// buildAllowIndex scans every comment in the pass's files.
func buildAllowIndex(pass *analysis.Pass) allowIndex {
	idx := make(allowIndex)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				names, reason, ok := ParseAllow(text)
				if !ok {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				d := &allowDirective{names: names, reason: reason, pos: c.Pos()}
				lines := idx[p.Filename]
				if lines == nil {
					lines = make(map[int][]*allowDirective)
					idx[p.Filename] = lines
				}
				lines[p.Line] = append(lines[p.Line], d)
				lines[p.Line+1] = append(lines[p.Line+1], d)
			}
		}
	}
	return idx
}

// at returns the directive covering the given position for analyzer,
// or nil.
func (idx allowIndex) at(pos token.Position, analyzer string) *allowDirective {
	for _, d := range idx[pos.Filename][pos.Line] {
		if d.covers(analyzer) {
			return d
		}
	}
	return nil
}

// report emits a diagnostic unless an ironman:allow directive with a
// non-empty reason covers the position for this analyzer.
func report(pass *analysis.Pass, idx allowIndex, pos token.Pos, msg string) {
	p := pass.Fset.Position(pos)
	if d := idx.at(p, pass.Analyzer.Name); d != nil {
		if d.reason != "" {
			return // audited suppression
		}
		pass.Reportf(pos, "%s [an ironman:allow directive must carry a reason]", msg)
		return
	}
	pass.Reportf(pos, "%s", msg)
}

// isTestFile reports whether the file is a _test.go file; the suite
// checks protocol code, not tests.
func isTestFile(pass *analysis.Pass, f *ast.File) bool {
	name := pass.Fset.Position(f.Pos()).Filename
	return strings.HasSuffix(name, "_test.go")
}
