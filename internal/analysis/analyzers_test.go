package analysis

import "testing"

func TestDetrange(t *testing.T)   { runFixture(t, Detrange, "ironman/internal/detfix") }
func TestRandsrc(t *testing.T)    { runFixture(t, Randsrc, "ironman/internal/randfix") }
func TestSecretleak(t *testing.T) { runFixture(t, Secretleak, "ironman/internal/leakfix") }
func TestWireerr(t *testing.T)    { runFixture(t, Wireerr, "ironman/internal/wirefix") }
func TestLocknet(t *testing.T)    { runFixture(t, Locknet, "ironman/internal/lockfix") }

// TestStubsClean runs every analyzer over the stub packages: compliant
// code must produce zero diagnostics.
func TestStubsClean(t *testing.T) {
	for _, path := range []string{
		"ironman/internal/transport",
		"ironman/internal/block",
		"ironman/internal/obs",
	} {
		for _, a := range Analyzers {
			runFixture(t, a, path)
		}
	}
}
