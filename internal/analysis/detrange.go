package analysis

import (
	"fmt"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
)

// Detrange enforces the transcript-determinism invariant: a Ferret-style
// PCG protocol desyncs unrecoverably if the two parties' wire
// transcripts diverge, so no nondeterministic value may influence any
// code that is transcript-relevant (reaches a transport send, or is
// called inside a call tree that sends). Flagged sources: map-range
// iteration order, time.Now/Since, math/rand, and GOMAXPROCS/NumCPU.
// crypto/rand is deliberately not a detrange source — protocol
// randomness is randsrc's domain, with its own setup-time policy.
var Detrange = &analysis.Analyzer{
	Name: "detrange",
	Doc: "flag nondeterministic values (map ranges, time.Now, math/rand, GOMAXPROCS) on paths that reach a transport send\n\n" +
		"Wire transcripts must be a deterministic function of the protocol inputs at any worker count; " +
		"suppress audited exceptions with //ironman:allow(detrange) <reason>.",
	Run: runDetrange,
}

func runDetrange(pass *analysis.Pass) (interface{}, error) {
	idx := buildAllowIndex(pass)
	g := buildCallGraph(pass)
	involved := g.sendInvolved()
	for obj, fd := range g.decls {
		if !involved[obj] {
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if t := pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok && !isCollectionRange(n) {
						report(pass, idx, n.Range, fmt.Sprintf(
							"map iteration order in %s is transcript-relevant (reaches a transport send); iterate a sorted copy or add //ironman:allow(detrange) <reason>",
							obj.Name()))
					}
				}
			case *ast.CallExpr:
				f := calleeOf(pass.TypesInfo, n)
				if src := detrangeSource(f); src != "" {
					report(pass, idx, n.Pos(), fmt.Sprintf(
						"%s in %s is transcript-relevant (reaches a transport send); derive the value deterministically or add //ironman:allow(detrange) <reason>",
						src, obj.Name()))
				}
			}
			return true
		})
	}
	return nil, nil
}

// isCollectionRange recognizes the first half of the compliant
// sorted-enumeration idiom: a map range whose body does nothing but
// append to a slice (which the caller then sorts). Order-insensitive
// collection introduces no nondeterminism, so it is exempt; any other
// statement in the body keeps the range flagged.
func isCollectionRange(r *ast.RangeStmt) bool {
	if len(r.Body.List) == 0 {
		return false
	}
	for _, stmt := range r.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
	}
	return true
}

// detrangeSource classifies a callee as a nondeterminism source,
// returning a human-readable name or "".
func detrangeSource(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	switch f.Pkg().Path() {
	case "time":
		if f.Name() == "Now" || f.Name() == "Since" {
			return "time." + f.Name()
		}
	case "math/rand", "math/rand/v2":
		return f.Pkg().Path() + "." + f.Name()
	case "runtime":
		if f.Name() == "GOMAXPROCS" || f.Name() == "NumCPU" {
			return "runtime." + f.Name()
		}
	}
	return ""
}
