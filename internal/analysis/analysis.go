// Package analysis is ironman-vet: a suite of five domain-specific
// static analyzers that make the repo's hardest-won protocol
// invariants machine-checked at vet time instead of replay time.
//
// The invariants and their analyzers:
//
//   - detrange — wire transcripts are byte-identical at any worker
//     count: no map-range order, time.Now, math/rand, or
//     GOMAXPROCS-dependent value may influence transcript-relevant
//     code (a call-graph walk from transport Send sites).
//   - randsrc — math/rand is banned in internal/ protocol code and
//     crypto/rand is restricted to setup-time call sites; mid-protocol
//     randomness comes from the seeded aesprg/chacha/prg streams.
//   - secretleak — Δ-correlations, GGM/PRG seeds, attach tokens, and
//     correlation block buffers must not flow into fmt/log/obs sinks.
//   - wireerr — errors from the module's protocol calls must not be
//     silently discarded (the classic desync: one party fails
//     mid-flight, the other waits forever).
//   - locknet — no network I/O while holding a mutex (the pool/otserv
//     metric points hold locks; a send under one serializes the fleet).
//
// Every analyzer honors the audited suppression directive
//
//	//ironman:allow(<analyzer>[,<analyzer>...]) <reason>
//
// on the offending line or the line above; the reason is mandatory.
//
// The suite runs two ways: as a go vet tool
// (go vet -vettool=$(which ironman-vet) ./..., see cmd/ironman-vet)
// and in-process over the whole module via CheckModule, which the
// vet-clean test uses so a plain `go test ./...` catches invariant
// regressions without the vettool.
package analysis

import "golang.org/x/tools/go/analysis"

// Analyzers is the ironman-vet suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	Detrange,
	Randsrc,
	Secretleak,
	Wireerr,
	Locknet,
}
