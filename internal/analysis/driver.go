package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// This file is the in-process driver: it loads every package of the
// module with full type information (export data for dependencies,
// source for the packages under analysis — the same shape the go vet
// unitchecker sees) and runs the suite over them. The vet-clean test
// uses it so plain `go test ./...` enforces the invariants without a
// vettool; it is also what keeps the analyzers honest about working
// from a Pass alone.

// Finding is one diagnostic from an analyzer, positioned in the
// module's source.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// listedPackage is the subset of `go list -json` output the driver
// needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	Export     string
	GoFiles    []string
}

// CheckModule runs the analyzers over every package of the module
// rooted at dir (as `go vet ./...` would, minus test files) and
// returns the surviving findings sorted by position. It shells out to
// the go tool for package metadata and export data, then type-checks
// each module package from source.
func CheckModule(dir string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	cmd := exec.Command("go", "list", "-export", "-deps", "-json=ImportPath,Dir,Standard,Export,GoFiles", "./...")
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	byPath := make(map[string]*listedPackage)
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list decode: %v", err)
		}
		cp := p
		byPath[p.ImportPath] = &cp
		if p.ImportPath == "ironman" || strings.HasPrefix(p.ImportPath, "ironman/") {
			targets = append(targets, &cp)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		p, ok := byPath[path]
		if !ok || p.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(p.Export)
	})

	var findings []Finding
	for _, p := range targets {
		fs, err := CheckPackage(fset, imp, p.ImportPath, p.Dir, p.GoFiles, analyzers)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		findings = append(findings, fs...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// CheckPackage parses and type-checks one package from source and runs
// the analyzers over it. Shared by CheckModule and the fixture test
// harness (which supplies its own importer over testdata/src).
func CheckPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck: %v", err)
	}
	return RunAnalyzers(fset, files, pkg, info, analyzers), nil
}

// RunAnalyzers drives each analyzer over one loaded package,
// collecting diagnostics as findings. Facts are not supported: the
// suite is deliberately package-local.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*analysis.Analyzer) []Finding {
	var findings []Finding
	for _, a := range analyzers {
		a := a
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   map[*analysis.Analyzer]interface{}{},
			Report: func(d analysis.Diagnostic) {
				findings = append(findings, Finding{
					Analyzer: a.Name,
					Pos:      fset.Position(d.Pos),
					Message:  d.Message,
				})
			},
			ReadFile:          os.ReadFile,
			ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
			ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
			ExportObjectFact:  func(types.Object, analysis.Fact) {},
			ExportPackageFact: func(analysis.Fact) {},
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		if _, err := a.Run(pass); err != nil {
			findings = append(findings, Finding{
				Analyzer: a.Name,
				Message:  fmt.Sprintf("analyzer error: %v", err),
			})
		}
	}
	return findings
}
