package aesprg

import (
	"testing"
	"testing/quick"

	"ironman/internal/block"
)

func TestDoublerDeterministicAndDistinct(t *testing.T) {
	for arity := 2; arity <= 4; arity++ {
		d := NewDoubler(arity)
		if d.Arity() != arity {
			t.Fatalf("arity = %d, want %d", d.Arity(), arity)
		}
		parent := block.New(42, 43)
		a := make([]block.Block, arity)
		b := make([]block.Block, arity)
		d.Expand(parent, a)
		d.Expand(parent, b)
		if !block.Equal(a, b) {
			t.Fatal("expansion not deterministic")
		}
		seen := map[block.Block]bool{parent: true}
		for _, c := range a {
			if seen[c] {
				t.Fatal("duplicate child")
			}
			seen[c] = true
		}
	}
}

func TestDoublerSeedSensitivity(t *testing.T) {
	d := NewDoubler(2)
	f := func(lo1, hi1, lo2, hi2 uint64) bool {
		p1, p2 := block.New(lo1, hi1), block.New(lo2, hi2)
		c1 := make([]block.Block, 2)
		c2 := make([]block.Block, 2)
		d.Expand(p1, c1)
		d.Expand(p2, c2)
		if p1 == p2 {
			return block.Equal(c1, c2)
		}
		return c1[0] != c2[0] && c1[1] != c2[1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDoublerBadArity(t *testing.T) {
	for _, arity := range []int{0, 1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewDoubler(%d) should panic", arity)
				}
			}()
			NewDoubler(arity)
		}()
	}
}

func TestHashTweakSeparation(t *testing.T) {
	h := NewHash()
	x := block.New(1, 2)
	if h.Sum(x, 0) == h.Sum(x, 1) {
		t.Fatal("different tweaks must give different digests")
	}
	if h.Sum(x, 5) != h.Sum(x, 5) {
		t.Fatal("hash must be deterministic")
	}
	y := block.New(1, 3)
	if h.Sum(x, 0) == h.Sum(y, 0) {
		t.Fatal("different inputs must give different digests")
	}
}

func TestHashNoFixedPoint(t *testing.T) {
	// H(x) != x for random x with overwhelming probability; a systematic
	// fixed point would indicate the feed-forward is missing.
	h := NewHash()
	f := func(lo, hi uint64, tweak uint64) bool {
		x := block.New(lo, hi)
		return h.Sum(x, tweak) != x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStreamDeterminism(t *testing.T) {
	seed := block.New(7, 9)
	a := NewStream(seed)
	b := NewStream(seed)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("streams from equal seeds must agree")
		}
	}
	c := NewStream(block.New(7, 10))
	if a.Uint64() == c.Uint64() && a.Uint64() == c.Uint64() {
		t.Fatal("streams from different seeds should diverge")
	}
}

func TestStreamFillChunking(t *testing.T) {
	// Reading byte-by-byte must equal one bulk read.
	seed := block.New(3, 1)
	bulk := make([]byte, 100)
	NewStream(seed).Fill(bulk)
	s := NewStream(seed)
	for i := range bulk {
		var one [1]byte
		s.Fill(one[:])
		if one[0] != bulk[i] {
			t.Fatalf("byte %d differs between chunked and bulk reads", i)
		}
	}
}

func TestUint32nUniformBounds(t *testing.T) {
	s := NewStream(block.New(11, 12))
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := s.Uint32n(10)
		counts[v]++
	}
	for v, c := range counts {
		// Expected 10000 per bucket; allow 10% slack.
		if c < 9000 || c > 11000 {
			t.Fatalf("bucket %d has %d draws, outside [9000,11000]", v, c)
		}
	}
}

func TestUint32nZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint32n(0) must panic")
		}
	}()
	NewStream(block.Zero).Uint32n(0)
}

func TestStreamBits(t *testing.T) {
	s := NewStream(block.New(1, 1))
	bits := make([]bool, 1000)
	s.Bits(bits)
	ones := 0
	for _, b := range bits {
		if b {
			ones++
		}
	}
	if ones < 400 || ones > 600 {
		t.Fatalf("ones = %d out of 1000, badly unbalanced", ones)
	}
}

func BenchmarkDoublerExpand2(b *testing.B) {
	d := NewDoubler(2)
	children := make([]block.Block, 2)
	p := block.New(1, 2)
	b.SetBytes(32)
	for i := 0; i < b.N; i++ {
		d.Expand(p, children)
	}
}

func BenchmarkHash(b *testing.B) {
	h := NewHash()
	x := block.New(1, 2)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		x = h.Sum(x, uint64(i))
	}
}

func BenchmarkStreamFill(b *testing.B) {
	s := NewStream(block.New(1, 2))
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		s.Fill(buf)
	}
}
