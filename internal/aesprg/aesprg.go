// Package aesprg provides the AES-based primitives every OT-extension
// implementation on CPUs uses (§2.3.1 of the paper): fixed-key AES as a
// length-doubling PRG for GGM trees, an AES-CTR pseudorandom stream, and
// the MMO-style correlation-robust hash H used to convert COT
// correlations into chosen-message OTs.
package aesprg

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"

	"ironman/internal/block"
)

// Fixed public PRG keys. Any fixed constants work: GGM security rests on
// the seed being secret, the keys are a public parameter of the scheme
// (this mirrors the fixed-key AES used by EMP/Ferret).
var fixedKeys = [4][16]byte{
	{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e, 0x0f},
	{0x10, 0x21, 0x32, 0x43, 0x54, 0x65, 0x76, 0x87, 0x98, 0xa9, 0xba, 0xcb, 0xdc, 0xed, 0xfe, 0x0f},
	{0xde, 0xad, 0xbe, 0xef, 0xca, 0xfe, 0xba, 0xbe, 0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77},
	{0x13, 0x57, 0x9b, 0xdf, 0x24, 0x68, 0xac, 0xe0, 0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88},
}

// Doubler is a length-doubling (or length-m-tupling) PRG built from m
// fixed-key AES instances: child_i(s) = AES_{k_i}(s) ⊕ s.
type Doubler struct {
	ciphers []cipher.Block
}

// NewDoubler returns a PRG that expands one block into arity children.
// arity must be between 2 and 4 (the paper's design space).
func NewDoubler(arity int) *Doubler {
	if arity < 2 || arity > len(fixedKeys) {
		panic("aesprg: arity out of range")
	}
	d := &Doubler{ciphers: make([]cipher.Block, arity)}
	for i := 0; i < arity; i++ {
		c, err := aes.NewCipher(fixedKeys[i][:])
		if err != nil {
			panic(err) // unreachable: key length is fixed at 16
		}
		d.ciphers[i] = c
	}
	return d
}

// Arity returns the number of children per expansion.
func (d *Doubler) Arity() int { return len(d.ciphers) }

// Expand writes the first len(children) children of parent into
// children; len(children) must be between 1 and Arity(). Each child
// costs exactly one AES call, so a full expansion is Arity() AES ops —
// the quantity Figures 6/7a count.
func (d *Doubler) Expand(parent block.Block, children []block.Block) {
	if len(children) < 1 || len(children) > len(d.ciphers) {
		panic("aesprg: children slice has wrong length")
	}
	var in, out [16]byte
	parent.Put(in[:])
	for i := range children {
		d.ciphers[i].Encrypt(out[:], in[:])
		children[i] = block.FromBytes(out[:]).Xor(parent)
	}
}

// Hash is the MMO correlation-robust hash H(x) = AES_k(σ(x)) ⊕ σ(x)
// with a fixed key and the linear orthomorphism σ from Guo et al.
// A per-use tweak (e.g. the OT instance index) is XORed into the input
// to give each invocation an independent random oracle.
type Hash struct {
	c cipher.Block
}

// NewHash returns the standard CRHF instance.
func NewHash() *Hash {
	c, err := aes.NewCipher(fixedKeys[0][:])
	if err != nil {
		panic(err)
	}
	return &Hash{c: c}
}

// Sum computes H(x ⊕ tweak).
func (h *Hash) Sum(x block.Block, tweak uint64) block.Block {
	s := x.Sigma()
	s.Lo ^= tweak
	var in, out [16]byte
	s.Put(in[:])
	h.c.Encrypt(out[:], in[:])
	return block.FromBytes(out[:]).Xor(s)
}

// Stream is a deterministic AES-CTR pseudorandom stream seeded by a
// block. It backs the IKNP column expansion and the LPN index matrix.
type Stream struct {
	c   cipher.Block
	ctr uint64
	buf [16]byte
	n   int // bytes of buf already consumed
}

// NewStream returns a PRG stream keyed by seed.
func NewStream(seed block.Block) *Stream {
	c, err := aes.NewCipher(seed.Bytes())
	if err != nil {
		panic(err)
	}
	return &Stream{c: c, n: 16}
}

func (s *Stream) refill() {
	var in [16]byte
	binary.LittleEndian.PutUint64(in[:8], s.ctr)
	s.ctr++
	s.c.Encrypt(s.buf[:], in[:])
	s.n = 0
}

// Fill overwrites p with pseudorandom bytes.
func (s *Stream) Fill(p []byte) {
	for len(p) > 0 {
		if s.n == 16 {
			s.refill()
		}
		n := copy(p, s.buf[s.n:])
		s.n += n
		p = p[n:]
	}
}

// Uint32 returns the next pseudorandom 32-bit value.
func (s *Stream) Uint32() uint32 {
	var b [4]byte
	s.Fill(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// Uint64 returns the next pseudorandom 64-bit value.
func (s *Stream) Uint64() uint64 {
	var b [8]byte
	s.Fill(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

// Uint32n returns a pseudorandom value in [0, n) using rejection
// sampling, so the distribution is exactly uniform.
func (s *Stream) Uint32n(n uint32) uint32 {
	if n == 0 {
		panic("aesprg: Uint32n(0)")
	}
	// Rejection threshold: largest multiple of n that fits in 2^32.
	limit := -n % n // (2^32 - n) % n == (2^32 % n)
	for {
		v := s.Uint32()
		if v >= limit {
			return v % n
		}
	}
}

// Block returns the next pseudorandom block.
func (s *Stream) Block() block.Block {
	var b [16]byte
	s.Fill(b[:])
	return block.FromBytes(b[:])
}

// Blocks fills dst with pseudorandom blocks.
func (s *Stream) Blocks(dst []block.Block) {
	for i := range dst {
		dst[i] = s.Block()
	}
}

// Bits fills dst with pseudorandom booleans.
func (s *Stream) Bits(dst []bool) {
	for i := 0; i < len(dst); i += 8 {
		var b [1]byte
		s.Fill(b[:])
		for j := 0; j < 8 && i+j < len(dst); j++ {
			dst[i+j] = b[0]>>uint(j)&1 == 1
		}
	}
}
