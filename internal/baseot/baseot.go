// Package baseot implements the Chou-Orlandi "Simplest OT" protocol
// (CO15) over NIST P-256, producing the handful of public-key OTs that
// seed IKNP extension (the one-time "Init" phase of Figure 1(b), which
// PCG-style OTE amortizes away).
//
// Protocol, per batch of n OTs with one sender scalar a:
//
//	S:  A = aG                                  -> R
//	R:  for each i, B_i = b_i·G + c_i·A         -> S
//	S:  k_i^0 = H(i, a·B_i), k_i^1 = H(i, a·B_i - a·A)
//	R:  k_i^{c_i} = H(i, b_i·A)
//
// The sender's two keys per instance are random OT messages; the
// receiver learns exactly the one matching its choice bit. Security is
// in the random-oracle model against semi-honest adversaries, which is
// the threat model of the whole repository (see DESIGN.md).
//
// P-256 is accessed through crypto/elliptic, whose point arithmetic on
// the named curve is constant time in the standard library.
package baseot

import (
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/big"

	"ironman/internal/block"
	"ironman/internal/transport"
)

var curve = elliptic.P256()

// pointLen is the byte length of an uncompressed marshaled P-256 point.
const pointLen = 65

// hashPoint derives a 128-bit key from an instance index and a point.
func hashPoint(i int, x, y *big.Int) block.Block {
	h := sha256.New()
	var idx [8]byte
	binary.LittleEndian.PutUint64(idx[:], uint64(i))
	h.Write(idx[:])
	h.Write(elliptic.Marshal(curve, x, y))
	return block.FromBytes(h.Sum(nil))
}

func randScalar() ([]byte, error) {
	for {
		k := make([]byte, 32)
		if _, err := rand.Read(k); err != nil {
			return nil, err
		}
		v := new(big.Int).SetBytes(k)
		v.Mod(v, curve.Params().N)
		if v.Sign() != 0 {
			return v.FillBytes(make([]byte, 32)), nil
		}
	}
}

// negate returns the negation of a point (x, -y mod p).
func negate(x, y *big.Int) (*big.Int, *big.Int) {
	ny := new(big.Int).Sub(curve.Params().P, y)
	ny.Mod(ny, curve.Params().P)
	return new(big.Int).Set(x), ny
}

// Send runs the sender side of n base OTs and returns the n random
// message pairs (m_i^0, m_i^1).
func Send(conn transport.Conn, n int) ([][2]block.Block, error) {
	a, err := randScalar()
	if err != nil {
		return nil, err
	}
	ax, ay := curve.ScalarBaseMult(a)
	if err := conn.Send(elliptic.Marshal(curve, ax, ay)); err != nil {
		return nil, err
	}

	msg, err := conn.Recv()
	if err != nil {
		return nil, err
	}
	if len(msg) != n*pointLen {
		return nil, fmt.Errorf("baseot: expected %d points, got %d bytes", n, len(msg))
	}
	// aA, used to shift B by -aA for the k^1 key.
	aAx, aAy := curve.ScalarMult(ax, ay, a)
	negAAx, negAAy := negate(aAx, aAy)

	out := make([][2]block.Block, n)
	for i := 0; i < n; i++ {
		bx, by := elliptic.Unmarshal(curve, msg[i*pointLen:(i+1)*pointLen])
		if bx == nil {
			return nil, fmt.Errorf("baseot: receiver sent invalid point %d", i)
		}
		abx, aby := curve.ScalarMult(bx, by, a)
		out[i][0] = hashPoint(i, abx, aby)
		sx, sy := curve.Add(abx, aby, negAAx, negAAy)
		out[i][1] = hashPoint(i, sx, sy)
	}
	return out, nil
}

// Receive runs the receiver side with the given choice bits and returns
// m_i^{c_i} for each instance.
func Receive(conn transport.Conn, choices []bool) ([]block.Block, error) {
	msg, err := conn.Recv()
	if err != nil {
		return nil, err
	}
	ax, ay := elliptic.Unmarshal(curve, msg)
	if ax == nil {
		return nil, fmt.Errorf("baseot: sender sent invalid point")
	}

	n := len(choices)
	bs := make([][]byte, n)
	points := make([]byte, 0, n*pointLen)
	for i := 0; i < n; i++ {
		b, err := randScalar()
		if err != nil {
			return nil, err
		}
		bs[i] = b
		bx, by := curve.ScalarBaseMult(b)
		if choices[i] {
			bx, by = curve.Add(bx, by, ax, ay)
		}
		points = append(points, elliptic.Marshal(curve, bx, by)...)
	}
	if err := conn.Send(points); err != nil {
		return nil, err
	}

	out := make([]block.Block, n)
	for i := 0; i < n; i++ {
		kx, ky := curve.ScalarMult(ax, ay, bs[i])
		out[i] = hashPoint(i, kx, ky)
	}
	return out, nil
}
