package baseot

import (
	"math/rand"
	"testing"

	"ironman/internal/block"
	"ironman/internal/transport"
)

// runOT executes a batch of base OTs over an in-process pipe.
func runOT(t *testing.T, choices []bool) ([][2]block.Block, []block.Block) {
	t.Helper()
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	type sret struct {
		pairs [][2]block.Block
		err   error
	}
	ch := make(chan sret, 1)
	go func() {
		pairs, err := Send(a, len(choices))
		ch <- sret{pairs, err}
	}()
	got, err := Receive(b, choices)
	if err != nil {
		t.Fatalf("receive: %v", err)
	}
	s := <-ch
	if s.err != nil {
		t.Fatalf("send: %v", s.err)
	}
	return s.pairs, got
}

func TestCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	choices := make([]bool, 16)
	for i := range choices {
		choices[i] = rng.Intn(2) == 1
	}
	pairs, got := runOT(t, choices)
	for i, c := range choices {
		want := pairs[i][0]
		if c {
			want = pairs[i][1]
		}
		if got[i] != want {
			t.Fatalf("OT %d: receiver key mismatch", i)
		}
		// The unchosen message must differ (receiver cannot trivially
		// hold both).
		other := pairs[i][1]
		if c {
			other = pairs[i][0]
		}
		if got[i] == other {
			t.Fatalf("OT %d: messages collide", i)
		}
	}
}

func TestInstanceSeparation(t *testing.T) {
	// Same choice bits, different instances: keys must all be distinct
	// (the per-instance tweak in the hash).
	choices := make([]bool, 8)
	pairs, _ := runOT(t, choices)
	seen := make(map[block.Block]bool)
	for _, p := range pairs {
		for _, k := range p {
			if seen[k] {
				t.Fatal("duplicate key across instances")
			}
			seen[k] = true
		}
	}
}

func TestFreshRandomnessPerRun(t *testing.T) {
	choices := []bool{false, true}
	p1, _ := runOT(t, choices)
	p2, _ := runOT(t, choices)
	if p1[0] == p2[0] {
		t.Fatal("two protocol runs produced identical keys")
	}
}

func TestRejectsInvalidPoint(t *testing.T) {
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	errCh := make(chan error, 1)
	go func() {
		_, err := Send(a, 1)
		errCh <- err
	}()
	// Consume A, reply with garbage of the right length.
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := b.Send(make([]byte, 65)); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil {
		t.Fatal("sender accepted an invalid point")
	}
}

func TestRejectsWrongCount(t *testing.T) {
	a, b := transport.Pipe()
	defer a.Close()
	defer b.Close()
	errCh := make(chan error, 1)
	go func() {
		_, err := Send(a, 3)
		errCh <- err
	}()
	if _, err := Receive(b, []bool{true}); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err == nil {
		t.Fatal("sender accepted wrong point count")
	}
}

func BenchmarkBaseOT128(b *testing.B) {
	choices := make([]bool, 128)
	for i := range choices {
		choices[i] = i%2 == 0
	}
	for i := 0; i < b.N; i++ {
		x, y := transport.Pipe()
		go func() {
			_, _ = Send(x, len(choices))
		}()
		if _, err := Receive(y, choices); err != nil {
			b.Fatal(err)
		}
		x.Close()
		y.Close()
	}
}
