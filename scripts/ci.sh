#!/usr/bin/env sh
# CI gate: formatting, vet, builds (including every example and
# command binary), the full test suite under the race detector, and
# the engine's headline perf metrics. Run from the repo root:
#
#   ./scripts/ci.sh
#
# Set BENCH_JSON=path to archive the ironman-bench metrics (gmw: AND
# gates/sec, bytes per AND, wire reduction; arith: triples/sec, bytes
# per triple, matmul GFLOP-equivalent; extend: the multicore Extend
# worker-scaling curve, COT/s and bytes per COT at workers=1,2,4,8) as
# a BENCH_*.json trajectory point instead of printing them.
#
# The committed trajectory point lives at the repo root; to refresh it
# after a perf-relevant change, run
#
#   BENCH_JSON=BENCH_extend.json ./scripts/ci.sh
#
# on a quiet machine and commit the regenerated file alongside the
# change (numbers are machine-dependent — compare trends, not runs
# from different hosts). TRACE_JSON=path additionally archives the
# extend phase-span trace (Chrome trace-event JSON) from the same run.
#
# CIRCUIT_JSON=path likewise archives the circuit-frontend metrics
# (embedded Bristol circuits through the level-scheduled SIMD
# evaluator, exchange/wire counters asserted against ppml.CircuitCost);
# the committed point is BENCH_circuit.json, refreshed with
#
#   CIRCUIT_JSON=BENCH_circuit.json ./scripts/ci.sh
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -s -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt -s needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== build example and command binaries =="
bindir=$(mktemp -d)
trap 'rm -rf "$bindir"' EXIT
go build -o "$bindir/" ./examples/... ./cmd/...
ls "$bindir"

echo "== ironman-vet (protocol-invariant analysis suite) =="
# The five domain analyzers (detrange, randsrc, secretleak, wireerr,
# locknet) run through the standard vet driver; every finding is either
# fixed or carries an audited //ironman:allow(<analyzer>) <reason>.
# See the "Enforced invariants" section of DESIGN.md.
go vet -vettool="$bindir/ironman-vet" ./...

echo "== otd admin endpoint smoke test =="
# Boot the dispenser with its admin listener on loopback, then hit the
# observability surface end-to-end: liveness, Prometheus exposition
# (known metric families must be present), and the JSON session dump.
"$bindir/otd" -listen 127.0.0.1:17117 -admin 127.0.0.1:17118 &
otd_pid=$!
trap 'kill "$otd_pid" 2>/dev/null || true; rm -rf "$bindir"' EXIT
i=0
until curl -sf http://127.0.0.1:17118/healthz >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "otd admin endpoint never came up" >&2
        exit 1
    fi
    sleep 0.1
done
curl -sf http://127.0.0.1:17118/healthz | grep -q '^ok$'
metrics=$(curl -sf http://127.0.0.1:17118/metrics)
echo "$metrics" | grep -q '^ironman_otserv_sessions 0$'
echo "$metrics" | grep -q '^ironman_otserv_sessions_opened_total 0$'
echo "$metrics" | grep -q '^ironman_otserv_sessions_closed_total 0$'
curl -sf http://127.0.0.1:17118/sessions | grep -q '"sessions"'
kill "$otd_pid"
wait "$otd_pid" 2>/dev/null || true
echo "admin endpoint OK"

echo "== dispenser fleet smoke test (3 shards + router + otload) =="
# Boot a 3-shard fleet behind the consistent-hash router, drive it with
# the load generator in quick mode over real TCP, and smoke the fleet
# observability surface: the router's /metrics and /shards plus each
# shard's per-shard /sessions dump. FLEET_JSON=path archives the otload
# report (draw-latency p50/p95/p99, typed shed counts, per-shard
# balance) as the committed BENCH_fleet.json trajectory point:
#
#   FLEET_JSON=BENCH_fleet.json ./scripts/ci.sh
"$bindir/otd" -listen 127.0.0.1:17121 -shard-id 1 -tiny -params tiny -max-sessions 2048 -admin 127.0.0.1:17131 &
shard1_pid=$!
"$bindir/otd" -listen 127.0.0.1:17122 -shard-id 2 -tiny -params tiny -max-sessions 2048 -admin 127.0.0.1:17132 &
shard2_pid=$!
"$bindir/otd" -listen 127.0.0.1:17123 -shard-id 3 -tiny -params tiny -max-sessions 2048 -admin 127.0.0.1:17133 &
shard3_pid=$!
"$bindir/otd" -route -listen 127.0.0.1:17120 \
    -shards 127.0.0.1:17121,127.0.0.1:17122,127.0.0.1:17123 \
    -admin 127.0.0.1:17130 &
router_pid=$!
trap 'kill "$shard1_pid" "$shard2_pid" "$shard3_pid" "$router_pid" 2>/dev/null || true; rm -rf "$bindir"' EXIT
# Readiness is all three shards on the ring, not just router liveness:
# a shard whose listener lost the startup race stays dead until the
# router's next probe tick revives it.
i=0
until curl -sf http://127.0.0.1:17130/metrics 2>/dev/null | grep -q '^ironman_router_shards_live 3$'; do
    i=$((i + 1))
    if [ "$i" -ge 100 ]; then
        echo "fleet router never saw all 3 shards live" >&2
        exit 1
    fi
    sleep 0.1
done
curl -sf http://127.0.0.1:17130/healthz | grep -q '^ok$'
fleet_json=${FLEET_JSON:-$bindir/fleet.json}
if [ -n "${FLEET_JSON:-}" ]; then
    # Archiving: the committed trajectory point is the full sizing —
    # 1024 concurrent sessions over 64 connections.
    "$bindir/otload" -addr 127.0.0.1:17120 -sessions 1024 -conns 64 \
        -draws 8 -n 128 -depth 128 -tenants 8 -out "$fleet_json" > /dev/null
    grep -q '"sessions_opened": 1024' "$fleet_json"
else
    "$bindir/otload" -addr 127.0.0.1:17120 -quick -n 64 -depth 128 -out "$fleet_json" > /dev/null
    grep -q '"sessions_opened": 96' "$fleet_json"
fi
grep -q '"balance_max_over_even"' "$fleet_json"
# Router surface: live-shard gauge and placement counter moved.
fleet_metrics=$(curl -sf http://127.0.0.1:17130/metrics)
echo "$fleet_metrics" | grep -q '^ironman_router_shards_live 3$'
echo "$fleet_metrics" | grep -q '^ironman_router_placements_total'
if echo "$fleet_metrics" | grep -q '^ironman_router_placements_total 0$'; then
    echo "router placed no sessions" >&2
    exit 1
fi
curl -sf http://127.0.0.1:17130/shards | grep -q '"state": "live"'
# Per-shard surface: every shard processed some share of the sessions.
for port in 17131 17132 17133; do
    curl -sf "http://127.0.0.1:$port/sessions" | grep -q '"sessions_opened"'
done
if [ -n "${FLEET_JSON:-}" ]; then
    echo "archived to $fleet_json"
fi
kill "$shard1_pid" "$shard2_pid" "$shard3_pid" "$router_pid"
wait "$shard1_pid" "$shard2_pid" "$shard3_pid" "$router_pid" 2>/dev/null || true
echo "fleet OK"

echo "== embedded circuit end-to-end (examples/private-aes over real TCP) =="
# Threshold AES through the Bristol circuit frontend: XOR-split key,
# four SIMD-packed blocks, ciphertexts verified against crypto/aes.
"$bindir/private-aes"

echo "== go test -race (includes the gmw + arith engines and the TCP pipeline) =="
go test -race ./...

echo "== engine metrics (ironman-bench -exp gmw,arith,extend -json) =="
# One document carries the gmw metrics (AND/s, B/AND, wire reduction),
# the arith metrics (triples/s, B/triple, matmul GFLOP-equiv), and the
# extend worker-scaling curves for BOTH extension backends on the same
# parameter set (COT/s per worker count, constant B/COT; the run panics
# if either backend's measured wire bytes drift from its Cost model).
trace_json=${TRACE_JSON:-$bindir/extend-trace.json}
if [ -n "${BENCH_JSON:-}" ]; then
    go run ./cmd/ironman-bench -quick -exp gmw,arith,extend -backend ferret,softspoken -json -trace "$trace_json" > "$BENCH_JSON"
    echo "archived to $BENCH_JSON"
else
    go run ./cmd/ironman-bench -quick -exp gmw,arith,extend -backend ferret,softspoken -json -trace "$trace_json"
fi

echo "== circuit frontend metrics (ironman-bench -exp circuit) =="
# The quick set evaluates embedded AES-128 and div64 SIMD-packed over
# the engine; the run itself panics if the measured exchange/wire
# counters drift from the exact ppml.CircuitCost model.
if [ -n "${CIRCUIT_JSON:-}" ]; then
    go run ./cmd/ironman-bench -quick -exp circuit -json > "$CIRCUIT_JSON"
    echo "archived to $CIRCUIT_JSON"
else
    go run ./cmd/ironman-bench -quick -exp circuit -json
fi

echo "== trace artifact sanity (chrome trace-event JSON) =="
# The extend bench above also emitted its phase spans; the artifact
# must be well-formed and contain the span taxonomy DESIGN.md names.
grep -q '"traceEvents"' "$trace_json"
grep -q '"extend"' "$trace_json"
grep -q '"lpn.encode"' "$trace_json"
grep -q '"spcot.expand"' "$trace_json"
grep -q '"softspoken.expand"' "$trace_json"
echo "trace artifact OK ($trace_json)"

echo "CI OK"
