#!/usr/bin/env sh
# CI gate: formatting, vet, builds (including every example and
# command binary), the full test suite under the race detector, and
# the engine's headline perf metrics. Run from the repo root:
#
#   ./scripts/ci.sh
#
# Set BENCH_JSON=path to archive the ironman-bench metrics (gmw: AND
# gates/sec, bytes per AND, wire reduction; arith: triples/sec, bytes
# per triple, matmul GFLOP-equivalent; extend: the multicore Extend
# worker-scaling curve, COT/s and bytes per COT at workers=1,2,4,8) as
# a BENCH_*.json trajectory point instead of printing them.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== build example and command binaries =="
bindir=$(mktemp -d)
trap 'rm -rf "$bindir"' EXIT
go build -o "$bindir/" ./examples/... ./cmd/...
ls "$bindir"

echo "== go test -race (includes the gmw + arith engines and the TCP pipeline) =="
go test -race ./...

echo "== engine metrics (ironman-bench -exp gmw,arith,extend -json) =="
# One document carries the gmw metrics (AND/s, B/AND, wire reduction),
# the arith metrics (triples/s, B/triple, matmul GFLOP-equiv), and the
# extend worker-scaling curve (COT/s per worker count, constant B/COT).
if [ -n "${BENCH_JSON:-}" ]; then
    go run ./cmd/ironman-bench -quick -exp gmw,arith,extend -json > "$BENCH_JSON"
    echo "archived to $BENCH_JSON"
else
    go run ./cmd/ironman-bench -quick -exp gmw,arith,extend -json
fi

echo "CI OK"
