package ironman

import (
	"math"
	"net"
	"testing"

	"ironman/internal/ferret"
)

// tcpPair returns two framed endpoints of a real loopback TCP
// connection.
func tcpPair(t *testing.T) (Conn, Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type acc struct {
		c   net.Conn
		err error
	}
	ch := make(chan acc, 1)
	go func() {
		c, err := ln.Accept()
		ch <- acc{c, err}
	}()
	dial, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatal(a.err)
	}
	t.Cleanup(func() { dial.Close(); a.c.Close() })
	return NewTCPConn(dial), NewTCPConn(a.c)
}

// TestArithPipelineOverTCP is the full cross-package path: prefetching
// correlation pools (internal/pool via NewDealtPair) feed COTs into
// GMW-compatible pools, two arith parties over a REAL TCP loopback
// run a fixed-point matvec on a Beaver matrix triple, truncate, bridge
// A2B into the packed GMW engine for ReLU, bridge back with B2A, and
// reveal — cross-checked against the plaintext computation. Run under
// -race by scripts/ci.sh.
func TestArithPipelineOverTCP(t *testing.T) {
	const m, k = 8, 12
	f := FixedPoint{Frac: 12}

	// Pool-fed correlations: one prefetching dealt pair per OT
	// direction, drawn through the async pool layer.
	params := ferret.TestParams(60_000, 1024, 6000, 32)
	opts := DefaultOptions()
	opts.Prefetch = 2
	budget := 64*m*k + 900*m
	mkPools := func() (*GMWSenderPool, *GMWReceiverPool) {
		t.Helper()
		connS, connR := Pipe()
		delta, err := RandomDelta()
		if err != nil {
			t.Fatal(err)
		}
		s, r, err := NewDealtPair(connS, connR, delta, params, opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		sp, err := s.GMWPool(budget)
		if err != nil {
			t.Fatal(err)
		}
		rp, err := r.GMWPool(budget)
		if err != nil {
			t.Fatal(err)
		}
		if s.PoolStats().Dispensed == 0 || r.PoolStats().Dispensed == 0 {
			t.Fatal("pools did not feed the draw")
		}
		return sp, rp
	}
	sAB, rAB := mkPools()
	sBA, rBA := mkPools()
	connA, connB := tcpPair(t)

	// Private inputs: party A the matrix, party B the vector.
	w := make([]float64, m*k)
	x := make([]float64, k)
	for i := range w {
		w[i] = math.Sin(float64(i + 1))
	}
	for i := range x {
		x[i] = math.Cos(float64(3 * i))
	}

	eval := func(conn Conn, out *GMWSenderPool, in *GMWReceiverPool, first bool) ([]float64, error) {
		p, err := NewArithParty(conn, out, in, first)
		if err != nil {
			return nil, err
		}
		tr, err := p.NewMatTriple(m, k, 1)
		if err != nil {
			return nil, err
		}
		ws := p.NewPrivate(f.EncodeVec(w), first)
		xs := p.NewPrivate(f.EncodeVec(x), !first)
		z, err := p.MatVec(ws, xs, tr)
		if err != nil {
			return nil, err
		}
		z = p.TruncVec(z, f.Frac)
		planes, err := p.A2B(z, 64)
		if err != nil {
			return nil, err
		}
		kept, err := p.Bool.ReLUVec(planes)
		if err != nil {
			return nil, err
		}
		back, err := p.B2A(kept)
		if err != nil {
			return nil, err
		}
		open, err := p.Reveal(back)
		if err != nil {
			return nil, err
		}
		return f.DecodeVec(open), nil
	}

	type res struct {
		vals []float64
		err  error
	}
	ch := make(chan res, 1)
	go func() {
		vals, err := eval(connA, sAB, rBA, true)
		ch <- res{vals, err}
	}()
	gotB, errB := eval(connB, sBA, rAB, false)
	if errB != nil {
		t.Fatal(errB)
	}
	ra := <-ch
	if ra.err != nil {
		t.Fatal(ra.err)
	}

	qw, qx := f.DecodeVec(f.EncodeVec(w)), f.DecodeVec(f.EncodeVec(x))
	tol := float64(k+2) / float64(int64(1)<<f.Frac)
	for i := 0; i < m; i++ {
		want := 0.0
		for l := 0; l < k; l++ {
			want += qw[i*k+l] * qx[l]
		}
		want = math.Max(want, 0)
		if math.Abs(ra.vals[i]-want) > tol || math.Abs(gotB[i]-want) > tol {
			t.Fatalf("pipeline wrong at %d: %g/%g want %g", i, ra.vals[i], gotB[i], want)
		}
	}
}
